//! The blocking TCP client for a [`NetServer`][crate::NetServer].
//!
//! [`NetClient`] is deliberately small: one socket, one frame at a time,
//! no background threads. Requests are pipelined by seq tag —
//! [`NetClient::submit`] writes a request frame and returns its seq;
//! [`NetClient::next_event`] reads whatever the server sends next
//! (responses arrive in *completion* order, so the seq is how a caller
//! re-correlates). [`NetClient::request`] wraps the two into the common
//! call-and-wait shape, including the retry contract for an overloaded
//! server: an `overloaded` frame is not an error to give up on — the
//! client sleeps the server's `retry_after_ms` hint (capped by
//! [`RetryPolicy::backoff_cap`]) and resubmits, up to
//! [`RetryPolicy::max_attempts`] attempts.

use crate::proto::{
    self, Frame, FrameKind, ProtoError, WireFault, WireGoodbye, WireOverloaded, WireResponse,
    WireWarmupBatch,
};
use crate::types::{BackendStats, CompileRequest, CompileResponse, ServeError, ServeStats};
use crate::warmup::{OwnedPredicate, WarmupEntry};
use std::collections::VecDeque;
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// How [`NetClient::request`] reacts to an `overloaded` frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total submission attempts before giving up with
    /// [`ClientError::Overloaded`] (1 = never retry). A request must be
    /// submitted at least once to learn anything, so 0 is normalized to
    /// 1 at client construction — see [`RetryPolicy::normalized`].
    pub max_attempts: u32,
    /// Upper bound on one backoff sleep. The server's `retry_after_ms`
    /// hint is honored up to this cap, so a pathological hint cannot
    /// stall the client for half a minute.
    pub backoff_cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_cap: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// The policy with `max_attempts` clamped to at least 1. Zero
    /// attempts is not a thing a submit-and-wait call can honor — it
    /// must submit once to learn anything — so [`NetClient::connect_with`]
    /// normalizes the policy up front. That keeps the
    /// [`ClientError::Overloaded`] contract honest: its `attempts` field
    /// always equals the *effective* policy's `max_attempts`, with no
    /// scattered `.max(1)` fudging at the use sites.
    #[must_use]
    pub fn normalized(self) -> Self {
        RetryPolicy {
            max_attempts: self.max_attempts.max(1),
            backoff_cap: self.backoff_cap,
        }
    }
}

/// Tuning for one [`NetClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// How long one [`NetClient::next_event`] read may wait for the next
    /// frame. Compiles run server-side, so this bounds *server silence*,
    /// not compile time only — keep it comfortably above the slowest
    /// expected compile.
    pub read_timeout: Duration,
    /// Socket write timeout for outgoing frames.
    pub write_timeout: Duration,
    /// The overload retry contract for [`NetClient::request`].
    pub retry: RetryPolicy,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(5),
            retry: RetryPolicy::default(),
        }
    }
}

/// What a [`NetClient`] can fail with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Connecting or configuring the socket failed.
    Io {
        /// What was being done when the I/O failed.
        context: String,
        /// The `io::Error` display text.
        detail: String,
    },
    /// The wire layer rejected a frame (truncation, corruption, timeout —
    /// see [`ProtoError`]).
    Proto(ProtoError),
    /// The server answered the request with a [`ServeError`]
    /// (unknown compiler, invalid target, `draining`, …).
    Server(ServeError),
    /// Every attempt was shed by an overloaded server; carries the
    /// server's final shed notice.
    Overloaded {
        /// Submission attempts made — equal to the effective (normalized)
        /// policy's `max_attempts`, which the client guarantees is ≥ 1.
        attempts: u32,
        /// The last `overloaded` frame received.
        last: WireOverloaded,
    },
    /// The server closed the conversation with a goodbye frame while a
    /// response was still awaited.
    Closed {
        /// The server's stated reason.
        reason: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io { context, detail } => {
                write!(f, "i/o failure during {context}: {detail}")
            }
            ClientError::Proto(e) => write!(f, "protocol failure: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::Overloaded { attempts, last } => write!(
                f,
                "server overloaded after {attempts} attempts (queue {}/{}, last retry-after hint \
                 {} ms)",
                last.queue_depth, last.queue_capacity, last.retry_after_ms
            ),
            ClientError::Closed { reason } => {
                write!(f, "server closed the connection: {reason}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// One frame from the server, decoded. What [`NetClient::next_event`]
/// yields.
#[derive(Debug, Clone)]
pub enum NetEvent {
    /// A completed compile for the submission tagged `seq`.
    Response {
        /// The seq [`NetClient::submit`] returned for this request.
        seq: u64,
        /// The response, exactly the in-process serde type.
        response: CompileResponse,
    },
    /// A failure: request-level when `seq` is present, connection-level
    /// otherwise.
    Fail {
        /// The failed submission's seq, if the failure is scoped to one.
        seq: Option<u64>,
        /// The error.
        error: ServeError,
    },
    /// The submission was shed by a full admission queue; the connection
    /// is still open and the notice carries a retry-after hint.
    Overloaded(WireOverloaded),
    /// A stats snapshot (answering [`NetClient::submit_stats`]), tagged
    /// with the answering server's identity.
    Stats(BackendStats),
    /// The server's half of a graceful close — its final frame.
    Goodbye(WireGoodbye),
    /// One chunk of a warm-up reply (answering [`NetClient::warm_up`]'s
    /// request frame).
    WarmupBatch(WireWarmupBatch),
}

/// A blocking client over one TCP connection to a
/// [`NetServer`][crate::NetServer]. See the module docs for the
/// submit/next-event model; [`NetClient::request`], [`NetClient::stats`],
/// and [`NetClient::goodbye`] are the common shapes pre-assembled.
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
    config: ClientConfig,
    next_seq: u64,
    /// Events read past while waiting for something specific (e.g.
    /// responses that completed while [`NetClient::stats`] waited for its
    /// snapshot). Drained by [`NetClient::next_event`] before the socket
    /// is touched again.
    backlog: VecDeque<NetEvent>,
    /// Stats answers still expected off the socket: incremented per
    /// stats-request written, decremented per stats frame read. This is
    /// how [`NetClient::stats`] correlates its round-trip — snapshots
    /// answering *earlier* bare [`NetClient::submit_stats`] calls are
    /// stale and must be skipped, not returned as if fresh.
    stats_inflight: u64,
}

impl NetClient {
    /// Connects with the default [`ClientConfig`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<NetClient, ClientError> {
        NetClient::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit timeouts and retry policy.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> Result<NetClient, ClientError> {
        let io_err = |context: &'static str| {
            move |e: io::Error| ClientError::Io {
                context: context.to_string(),
                detail: e.to_string(),
            }
        };
        let stream = TcpStream::connect(addr).map_err(io_err("connecting"))?;
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(Some(config.read_timeout))
            .map_err(io_err("configuring the read timeout"))?;
        stream
            .set_write_timeout(Some(config.write_timeout))
            .map_err(io_err("configuring the write timeout"))?;
        let config = ClientConfig {
            retry: config.retry.normalized(),
            ..config
        };
        Ok(NetClient {
            stream,
            config,
            next_seq: 0,
            backlog: VecDeque::new(),
            stats_inflight: 0,
        })
    }

    /// Writes one request frame and returns the seq its response will
    /// carry. Does not wait for anything.
    pub fn submit(&mut self, req: &CompileRequest) -> Result<u64, ClientError> {
        let seq = self.next_seq;
        proto::write_frame(&mut &self.stream, &Frame::request(seq, req))?;
        self.next_seq += 1;
        Ok(seq)
    }

    /// Writes one stats-request frame; the snapshot arrives as
    /// [`NetEvent::Stats`].
    pub fn submit_stats(&mut self) -> Result<(), ClientError> {
        proto::write_frame(&mut &self.stream, &Frame::stats_request())?;
        self.stats_inflight += 1;
        Ok(())
    }

    /// The effective [`ClientConfig`] — retry policy already normalized
    /// (`max_attempts >= 1`), so this is exactly what
    /// [`NetClient::request`] will do.
    pub fn config(&self) -> &ClientConfig {
        &self.config
    }

    /// The next server event: the backlog first, then one blocking frame
    /// read (bounded by [`ClientConfig::read_timeout`]).
    pub fn next_event(&mut self) -> Result<NetEvent, ClientError> {
        if let Some(event) = self.backlog.pop_front() {
            return Ok(event);
        }
        self.read_event()
    }

    /// One frame off the socket, decoded into a [`NetEvent`].
    fn read_event(&mut self) -> Result<NetEvent, ClientError> {
        let frame = proto::read_frame(&mut &self.stream)?;
        match frame.kind {
            FrameKind::Response => {
                let wire: WireResponse = frame.decode()?;
                Ok(NetEvent::Response {
                    seq: wire.seq,
                    response: wire.response,
                })
            }
            FrameKind::Error => {
                let wire: WireFault = frame.decode()?;
                Ok(NetEvent::Fail {
                    seq: wire.seq,
                    error: wire.error,
                })
            }
            FrameKind::Overloaded => Ok(NetEvent::Overloaded(frame.decode()?)),
            FrameKind::Stats => {
                self.stats_inflight = self.stats_inflight.saturating_sub(1);
                Ok(NetEvent::Stats(frame.decode()?))
            }
            FrameKind::Goodbye => Ok(NetEvent::Goodbye(frame.decode()?)),
            FrameKind::WarmupBatch => Ok(NetEvent::WarmupBatch(frame.decode()?)),
            kind => Err(ClientError::Proto(ProtoError::Unexpected {
                kind,
                context: "a client receives response, error, overloaded, stats, warmup-batch, \
                          and goodbye frames"
                    .to_string(),
            })),
        }
    }

    /// Submit-and-wait with the overload retry contract: an `overloaded`
    /// answer sleeps the server's retry-after hint (capped by the
    /// policy's `backoff_cap`) and resubmits, up to `max_attempts`
    /// attempts. Responses for *other* pipelined seqs observed while
    /// waiting are preserved for later [`NetClient::next_event`] calls.
    pub fn request(&mut self, req: &CompileRequest) -> Result<CompileResponse, ClientError> {
        let policy = self.config.retry;
        let mut deferred: Vec<NetEvent> = Vec::new();
        let mut attempts = 0u32;
        let outcome = 'attempts: loop {
            attempts += 1;
            let seq = match self.submit(req) {
                Ok(seq) => seq,
                Err(e) => break 'attempts Err(e),
            };
            loop {
                let event = match self.next_event() {
                    Ok(event) => event,
                    Err(e) => break 'attempts Err(e),
                };
                match event {
                    NetEvent::Response { seq: s, response } if s == seq => {
                        break 'attempts Ok(response)
                    }
                    NetEvent::Fail { seq: s, error } if s == Some(seq) || s.is_none() => {
                        break 'attempts Err(ClientError::Server(error))
                    }
                    NetEvent::Overloaded(o) if o.seq == seq => {
                        if attempts >= policy.max_attempts {
                            break 'attempts Err(ClientError::Overloaded { attempts, last: o });
                        }
                        let wait = Duration::from_millis(o.retry_after_ms).min(policy.backoff_cap);
                        std::thread::sleep(wait);
                        break; // resubmit under a fresh seq
                    }
                    NetEvent::Goodbye(g) => {
                        break 'attempts Err(ClientError::Closed { reason: g.reason })
                    }
                    other => deferred.push(other),
                }
            }
        };
        self.backlog.extend(deferred);
        outcome
    }

    /// One warm-up transfer: send the joiner's owned-digest predicate,
    /// collect every [`WarmupEntry`] the donor's cache holds for keys the
    /// predicate claims, across however many `warmup-batch` chunks the
    /// donor needs to stay under the frame cap. Returns once the chunk
    /// marked `done` arrives. Responses for pipelined compiles observed
    /// while waiting are preserved for later [`NetClient::next_event`]
    /// calls. Entries are returned *unverified* — importers must run
    /// [`WarmupEntry::verify`] (the service's bulk import does) so a
    /// corrupt donor can never poison a cache.
    pub fn warm_up(&mut self, predicate: &OwnedPredicate) -> Result<Vec<WarmupEntry>, ClientError> {
        let seq = self.next_seq;
        proto::write_frame(&mut &self.stream, &Frame::warmup_request(seq, predicate))?;
        self.next_seq += 1;
        let mut deferred: Vec<NetEvent> = Vec::new();
        let mut entries: Vec<WarmupEntry> = Vec::new();
        let outcome = loop {
            match self.next_event() {
                Ok(NetEvent::WarmupBatch(batch)) if batch.seq == seq => {
                    entries.extend(batch.entries);
                    if batch.done {
                        break Ok(std::mem::take(&mut entries));
                    }
                }
                Ok(NetEvent::Fail { seq: s, error }) if s == Some(seq) || s.is_none() => {
                    break Err(ClientError::Server(error));
                }
                Ok(NetEvent::Overloaded(o)) if o.seq == seq => {
                    break Err(ClientError::Overloaded {
                        attempts: 1,
                        last: o,
                    });
                }
                Ok(NetEvent::Goodbye(g)) => break Err(ClientError::Closed { reason: g.reason }),
                Ok(other) => deferred.push(other),
                Err(e) => break Err(e),
            }
        };
        self.backlog.extend(deferred);
        outcome
    }

    /// A [`ServeStats`] snapshot over the wire — fresh, not a leftover.
    /// See [`NetClient::backend_stats`] for the correlation contract;
    /// this is the identity-stripped convenience form.
    pub fn stats(&mut self) -> Result<ServeStats, ClientError> {
        self.backend_stats().map(|tagged| tagged.stats)
    }

    /// An identity-tagged stats snapshot over the wire, correlated to
    /// *this* call: any snapshot still owed to an earlier bare
    /// [`NetClient::submit_stats`] — queued in the backlog or still in
    /// flight on the socket — is discarded as stale, and exactly the
    /// answer to the request written here is returned. (Stats carry no
    /// seq on the wire, so the correlation is positional: the server
    /// answers stats-requests in order on one connection.) Responses for
    /// pipelined compiles observed while waiting are preserved for later
    /// [`NetClient::next_event`] calls; no spurious stats event is ever
    /// left queued behind this call.
    pub fn backend_stats(&mut self) -> Result<BackendStats, ClientError> {
        self.backlog
            .retain(|event| !matches!(event, NetEvent::Stats(_)));
        let stale = self.stats_inflight;
        self.submit_stats()?;
        let mut deferred: Vec<NetEvent> = Vec::new();
        let mut skipped = 0u64;
        let outcome = loop {
            match self.read_event() {
                Ok(NetEvent::Stats(tagged)) => {
                    if skipped < stale {
                        skipped += 1;
                        continue;
                    }
                    break Ok(tagged);
                }
                Ok(NetEvent::Goodbye(g)) => break Err(ClientError::Closed { reason: g.reason }),
                Ok(other) => deferred.push(other),
                Err(e) => break Err(e),
            }
        };
        self.backlog.extend(deferred);
        outcome
    }

    /// Graceful close: announce no further requests, then drain events
    /// until the server's answering goodbye (every already-submitted
    /// response arrives first, per the drain contract). Consumes the
    /// client; the returned goodbye carries the server's reason and the
    /// connection's served count.
    pub fn goodbye(mut self) -> Result<WireGoodbye, ClientError> {
        proto::write_frame(&mut &self.stream, &Frame::goodbye("client done", 0))?;
        loop {
            match self.next_event()? {
                NetEvent::Goodbye(g) => return Ok(g),
                _other => {} // late responses; the caller said they are done
            }
        }
    }

    /// The local socket address (useful in tests).
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, ClientError> {
        self.stream.local_addr().map_err(|e| ClientError::Io {
            context: "reading the local address".to_string(),
            detail: e.to_string(),
        })
    }
}
