//! The cache warm-up replay protocol: zero-loss hand-off for elastic
//! ring membership.
//!
//! A backend that joins (or probe-recovers into) the ring starts
//! stone-cold: every key it now owns would recompile from scratch even
//! though the previous owner holds the finished artifact. This module is
//! the hand-off. The joiner derives an [`OwnedPredicate`] from the
//! router's ring geometry ([`crate::Router::warmup_predicate`]) — "the
//! keys whose nearest ring point is mine" — ships it to each donor in a
//! `warmup-request` frame, and the donor answers with chunked
//! `warmup-batch` frames exported straight from its cache snapshot,
//! never touching its worker pool. The joiner verifies and bulk-imports
//! the entries before taking traffic, so its first pass over its owned
//! keys serves cache hits, not recompiles.
//!
//! Robustness is the contract, not an afterthought:
//!
//! * **Per-entry integrity** — every [`WarmupEntry`] carries the hex
//!   digests of its key JSON *and* its serialized artifact;
//!   [`WarmupEntry::verify`] recomputes both on import and rejects
//!   mismatches entry-by-entry, so a corrupt or tampered batch can never
//!   poison the cache (the rejected keys simply stay cold).
//! * **Idempotent import** — entries land via insert-if-absent: a
//!   double-import is a no-op and the importer's own (fresher) entry
//!   always wins over a replayed one.
//! * **Graceful degradation** — a donor that dies mid-transfer, refuses,
//!   or stalls costs retries with capped backoff (`overloaded` hints are
//!   honored like the request path), and on final failure the joiner
//!   just runs cold for those keys: correctness never depends on the
//!   transfer succeeding.

use crate::cache::{key_digest, CacheEntry};
use crate::client::{ClientConfig, ClientError, NetClient};
use crate::digest::fnv1a_128;
use crate::router::fold;
use crate::service::CompileService;
use qft_core::CompileResult;
use serde::{Deserialize, Serialize};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// Soft byte budget for one `warmup-batch` frame's entry list (2 MiB —
/// comfortably under the wire layer's 16 MiB hard cap even after JSON
/// envelope overhead). Chunking is greedy by serialized entry size; an
/// oversized single entry still travels alone rather than being dropped.
pub const WARMUP_CHUNK_BUDGET: usize = 2 << 20;

/// First backoff sleep after a transport-shaped warm-up failure; doubles
/// per retry up to the client's [`RetryPolicy::backoff_cap`]
/// (capped there, so a flapping donor cannot stall a join indefinitely).
///
/// [`RetryPolicy::backoff_cap`]: crate::RetryPolicy::backoff_cap
const WARMUP_BACKOFF_FLOOR: Duration = Duration::from_millis(50);

/// The joiner's owned-key predicate, in ring geometry: its own virtual
/// points and everyone else's. A digest is *owned* iff its nearest ring
/// successor is one of [`OwnedPredicate::member_points`] — exactly the
/// consistent-hash ownership rule the router routes by, evaluated
/// against the donor-side ring without shipping any key material.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OwnedPredicate {
    /// The claiming backend's virtual ring points.
    pub member_points: Vec<u64>,
    /// Every other ring member's virtual points.
    pub other_points: Vec<u64>,
}

impl OwnedPredicate {
    /// Whether the claiming backend owns `digest` on the predicate's
    /// ring: its nearest clockwise point is strictly closer than every
    /// other member's (ties conservatively yield to the others — the
    /// key stays with its current owner and simply recompiles if the
    /// router disagrees). No member points claims nothing; no *other*
    /// points claims everything (a sole member owns the whole ring).
    pub fn owns(&self, digest: u128) -> bool {
        let p = fold(digest);
        // Clockwise distance to the nearest successor point: wrapping
        // subtraction is exactly the ring metric, no sorting needed.
        let nearest = |points: &[u64]| points.iter().map(|&pt| pt.wrapping_sub(p)).min();
        match (nearest(&self.member_points), nearest(&self.other_points)) {
            (None, _) => false,
            (Some(_), None) => true,
            (Some(mine), Some(theirs)) => mine < theirs,
        }
    }
}

/// One cache entry in transit: the canonical key JSON, both integrity
/// digests, the cold-compile cost, and the artifact itself.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WarmupEntry {
    /// The canonical request JSON the cache key digest was computed
    /// from (the cache's collision-audit pre-image).
    pub key_json: String,
    /// Hex (32 chars) of the 128-bit FNV-1a digest of `key_json`.
    /// Recomputed on import; a mismatch rejects the entry.
    pub key_digest: String,
    /// Hex (32 chars) of the 128-bit FNV-1a digest of the artifact's
    /// canonical JSON serialization. Recomputed on import; a mismatch —
    /// truncation, corruption, tampering — rejects the entry.
    pub artifact_digest: String,
    /// The original cold compile's wall-clock cost (response metadata;
    /// the artifact itself is wall-time-stripped).
    pub cold_compile_s: f64,
    /// The byte-deterministic artifact.
    pub result: Arc<CompileResult>,
}

impl WarmupEntry {
    /// An entry exported from a donor's cache slot, digests stamped
    /// from the actual bytes being shipped.
    pub(crate) fn from_cache(entry: &CacheEntry) -> WarmupEntry {
        let artifact_json =
            serde_json::to_string(&*entry.result).expect("artifacts always serialize");
        WarmupEntry {
            key_json: entry.key_json.to_string(),
            key_digest: digest_hex(key_digest(&entry.key_json)),
            artifact_digest: digest_hex(fnv1a_128(artifact_json.as_bytes())),
            cold_compile_s: entry.cold_compile_s,
            result: Arc::clone(&entry.result),
        }
    }

    /// The import-side integrity check: both digests are *recomputed*
    /// from the entry's own bytes and compared against its claims, so a
    /// flipped byte anywhere — key, artifact, or digest field — fails
    /// closed. Returns the verified 128-bit cache key.
    pub fn verify(&self) -> Result<u128, String> {
        let claimed_key = parse_digest_hex(&self.key_digest).ok_or_else(|| {
            format!(
                "key digest {:?} is not 32 lowercase hex characters",
                self.key_digest
            )
        })?;
        let actual_key = key_digest(&self.key_json);
        if actual_key != claimed_key {
            return Err(format!(
                "key digest mismatch: entry claims {}, re-digest of its key JSON is {}",
                self.key_digest,
                digest_hex(actual_key)
            ));
        }
        let claimed_artifact = parse_digest_hex(&self.artifact_digest).ok_or_else(|| {
            format!(
                "artifact digest {:?} is not 32 lowercase hex characters",
                self.artifact_digest
            )
        })?;
        let artifact_json = serde_json::to_string(&*self.result)
            .map_err(|e| format!("artifact failed to re-serialize: {e}"))?;
        let actual_artifact = fnv1a_128(artifact_json.as_bytes());
        if actual_artifact != claimed_artifact {
            return Err(format!(
                "artifact digest mismatch for key {}: entry claims {}, re-digest is {} — \
                 corrupt or truncated in transit",
                self.key_digest,
                self.artifact_digest,
                digest_hex(actual_artifact)
            ));
        }
        if !self.cold_compile_s.is_finite() || self.cold_compile_s < 0.0 {
            return Err(format!(
                "cold compile cost {} is not a finite non-negative number",
                self.cold_compile_s
            ));
        }
        Ok(actual_key)
    }
}

/// What one bulk import did, entry by entry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WarmupImport {
    /// Entries verified and inserted.
    pub imported: u64,
    /// Entries skipped because the key was already resident — the
    /// local (fresher) entry wins; a double-import is a no-op.
    pub already_present: u64,
    /// Entries rejected by [`WarmupEntry::verify`]; their keys stay
    /// cold and recompile on first use.
    pub rejected: u64,
}

impl WarmupImport {
    /// Folds another import's tallies into this one.
    pub fn absorb(&mut self, other: WarmupImport) {
        self.imported += other.imported;
        self.already_present += other.already_present;
        self.rejected += other.rejected;
    }
}

/// One donor's contribution to a [`WarmupReport`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DonorOutcome {
    /// The donor's address, as text.
    pub addr: String,
    /// Connection/fetch attempts made against this donor.
    pub attempts: u32,
    /// Entries the donor shipped (pre-verification).
    pub fetched: u64,
    /// Why the fetch ultimately failed, if it did. A failed donor is
    /// degradation, not an error: its keys run cold.
    pub error: Option<String>,
}

/// What a full [`replay_into`] warm-up accomplished.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WarmupReport {
    /// Per-donor fetch outcomes, in the order the donors were tried.
    pub donors: Vec<DonorOutcome>,
    /// The combined import tally across every successful fetch.
    pub import: WarmupImport,
}

/// Splits entries into `warmup-batch`-sized chunks: greedy packing by
/// serialized entry size against `budget` bytes. Always returns at
/// least one chunk (an empty final chunk carries `done = true` when the
/// donor had nothing to ship); a single entry larger than the budget
/// still travels, alone in its chunk.
pub fn chunk_entries(entries: Vec<WarmupEntry>, budget: usize) -> Vec<Vec<WarmupEntry>> {
    let budget = budget.max(1);
    let mut chunks: Vec<Vec<WarmupEntry>> = Vec::new();
    let mut current: Vec<WarmupEntry> = Vec::new();
    let mut current_bytes = 0usize;
    for entry in entries {
        let cost = serde_json::to_string(&entry)
            .map(|s| s.len())
            .unwrap_or(budget);
        if !current.is_empty() && current_bytes + cost > budget {
            chunks.push(std::mem::take(&mut current));
            current_bytes = 0;
        }
        current_bytes += cost;
        current.push(entry);
    }
    chunks.push(current);
    chunks
}

/// Fetches the predicate's entries from one donor with the full retry
/// contract: a fresh connection per attempt, `overloaded` hints honored
/// (sleep the donor's `retry_after_ms`, capped by the policy's
/// `backoff_cap`), transport-shaped failures retried with capped
/// exponential backoff, request-shaped refusals returned immediately
/// (every retry would answer the same). Returns the attempt count
/// alongside the outcome so reports stay honest about the cost.
pub fn fetch_from_donor(
    addr: SocketAddr,
    config: &ClientConfig,
    predicate: &OwnedPredicate,
) -> (u32, Result<Vec<WarmupEntry>, ClientError>) {
    let policy = config.retry.normalized();
    let mut attempts = 0u32;
    let mut backoff = WARMUP_BACKOFF_FLOOR;
    loop {
        attempts += 1;
        let outcome = NetClient::connect_with(addr, config.clone())
            .and_then(|mut client| client.warm_up(predicate));
        match outcome {
            Ok(entries) => return (attempts, Ok(entries)),
            Err(e) if attempts >= policy.max_attempts => return (attempts, Err(e)),
            Err(ClientError::Overloaded { last, .. }) => {
                let wait = Duration::from_millis(last.retry_after_ms).min(policy.backoff_cap);
                std::thread::sleep(wait);
            }
            Err(ClientError::Io { .. })
            | Err(ClientError::Proto(_))
            | Err(ClientError::Closed { .. }) => {
                std::thread::sleep(backoff.min(policy.backoff_cap));
                backoff = backoff.saturating_mul(2).min(policy.backoff_cap);
            }
            Err(e @ ClientError::Server(_)) => return (attempts, Err(e)),
        }
    }
}

/// The whole joiner-side warm-up: fetch the predicate's entries from
/// each donor in turn and bulk-import them into `service`'s cache,
/// verified entry by entry. Donors fail independently — a dead or
/// refusing donor is recorded in the report and skipped, never fatal;
/// the corresponding keys simply run cold. Import is idempotent, so
/// overlapping donor populations (or a re-run) cost nothing.
pub fn replay_into(
    service: &CompileService,
    donors: &[SocketAddr],
    predicate: &OwnedPredicate,
    config: &ClientConfig,
) -> WarmupReport {
    let mut report = WarmupReport {
        donors: Vec::with_capacity(donors.len()),
        import: WarmupImport::default(),
    };
    for &addr in donors {
        let (attempts, outcome) = fetch_from_donor(addr, config, predicate);
        match outcome {
            Ok(entries) => {
                let fetched = entries.len() as u64;
                report.import.absorb(service.import_warmup(&entries));
                report.donors.push(DonorOutcome {
                    addr: addr.to_string(),
                    attempts,
                    fetched,
                    error: None,
                });
            }
            Err(e) => report.donors.push(DonorOutcome {
                addr: addr.to_string(),
                attempts,
                fetched: 0,
                error: Some(e.to_string()),
            }),
        }
    }
    report
}

/// `digest` as 32 lowercase hex characters — the wire rendering of a
/// 128-bit cache key (JSON numbers cannot carry 128 bits losslessly).
pub fn digest_hex(digest: u128) -> String {
    format!("{digest:032x}")
}

/// Parses [`digest_hex`]'s output, strictly: exactly 32 lowercase hex
/// characters. Truncated, padded, or mixed-case digests are refused —
/// integrity fields have one canonical spelling.
pub fn parse_digest_hex(text: &str) -> Option<u128> {
    if text.len() != 32
        || !text
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    {
        return None;
    }
    u128::from_str_radix(text, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qft_core::{CompileOptions, QftCompiler, Target};

    fn entry_for(n: usize) -> WarmupEntry {
        let target = Target::lnn(n).unwrap();
        let mut result = qft_core::LnnMapper
            .compile(&target, &CompileOptions::default())
            .unwrap();
        result.strip_wall_times();
        let key_json = format!("{{\"compiler\":\"lnn\",\"target\":\"lnn:{n}\"}}");
        WarmupEntry::from_cache(&CacheEntry {
            result: Arc::new(result),
            cold_compile_s: 0.125,
            key_json: Arc::from(key_json.as_str()),
        })
    }

    #[test]
    fn digest_hex_roundtrips_and_rejects_sloppy_spellings() {
        for digest in [0u128, 1, u128::MAX, 0xdead_beef] {
            let hex = digest_hex(digest);
            assert_eq!(hex.len(), 32);
            assert_eq!(parse_digest_hex(&hex), Some(digest));
        }
        assert_eq!(parse_digest_hex(""), None);
        assert_eq!(parse_digest_hex(&digest_hex(7)[..31]), None, "truncated");
        // A digest whose spelling contains letters, so uppercasing
        // actually changes it.
        assert_eq!(
            parse_digest_hex(&digest_hex(0xdead_beef).to_uppercase()),
            None
        );
        assert_eq!(
            parse_digest_hex(&format!("+{}", &digest_hex(7)[..31])),
            None
        );
    }

    #[test]
    fn verify_accepts_honest_entries_and_rejects_every_tamper() {
        let entry = entry_for(6);
        let key = entry.verify().expect("honest entry verifies");
        assert_eq!(key, key_digest(&entry.key_json));

        // Tampered key JSON: the key digest no longer matches.
        let mut bad = entry.clone();
        bad.key_json.push(' ');
        assert!(bad.verify().unwrap_err().contains("key digest mismatch"));

        // Tampered artifact: the artifact digest no longer matches.
        let mut bad = entry.clone();
        let mut result = (*bad.result).clone();
        result.n += 1;
        bad.result = Arc::new(result);
        assert!(bad
            .verify()
            .unwrap_err()
            .contains("artifact digest mismatch"));

        // Truncated digest field: rejected before any digesting.
        let mut bad = entry.clone();
        bad.artifact_digest.truncate(16);
        assert!(bad.verify().unwrap_err().contains("32 lowercase hex"));

        // Absurd metadata: rejected.
        let mut bad = entry.clone();
        bad.cold_compile_s = f64::NAN;
        assert!(bad.verify().unwrap_err().contains("finite"));
    }

    #[test]
    fn predicate_ownership_matches_the_ring_rule() {
        // One member point at a third of the ring, one other point at
        // two thirds: the other's arc is (1/3, 2/3] — a third of the
        // ring — so 512 folded digests land on both sides.
        let (member, other) = (u64::MAX / 3, 2 * (u64::MAX / 3));
        let predicate = OwnedPredicate {
            member_points: vec![member],
            other_points: vec![other],
        };
        // Scan digests and cross-check against the clockwise-distance
        // rule written out longhand.
        let (mut saw_owned, mut saw_other) = (false, false);
        for i in 0..512u128 {
            let digest = fnv1a_128(&i.to_le_bytes());
            let p = fold(digest);
            let mine = member.wrapping_sub(p);
            let theirs = other.wrapping_sub(p);
            assert_eq!(predicate.owns(digest), mine < theirs, "digest {i}");
            if predicate.owns(digest) {
                saw_owned = true;
            } else {
                saw_other = true;
            }
        }
        assert!(saw_owned && saw_other, "the scan must exercise both sides");
        // Degenerate shapes.
        let nobody = OwnedPredicate {
            member_points: vec![],
            other_points: vec![1, 2, 3],
        };
        assert!(!nobody.owns(42));
        let sole = OwnedPredicate {
            member_points: vec![7],
            other_points: vec![],
        };
        assert!(sole.owns(42), "a sole member owns the whole ring");
    }

    #[test]
    fn chunking_respects_the_budget_and_never_strands_entries() {
        let entries: Vec<WarmupEntry> = (4..10).map(entry_for).collect();
        let one_size = serde_json::to_string(&entries[0]).unwrap().len();

        // A generous budget: one chunk.
        let chunks = chunk_entries(entries.clone(), one_size * 100);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].len(), 6);

        // A budget of ~two entries forces multiple chunks, none empty
        // except never, and the concatenation preserves order.
        let chunks = chunk_entries(entries.clone(), one_size * 2);
        assert!(chunks.len() >= 2, "got {} chunks", chunks.len());
        let flat: Vec<String> = chunks
            .iter()
            .flatten()
            .map(|e| e.key_json.clone())
            .collect();
        let want: Vec<String> = entries.iter().map(|e| e.key_json.clone()).collect();
        assert_eq!(flat, want);

        // A budget smaller than any entry: every entry travels alone.
        let chunks = chunk_entries(entries.clone(), 1);
        assert_eq!(chunks.len(), 6);

        // No entries: exactly one empty chunk (the done marker rides it).
        let chunks = chunk_entries(Vec::new(), one_size);
        assert_eq!(chunks.len(), 1);
        assert!(chunks[0].is_empty());
    }
}
