//! The front tier: consistent-hash routing across N backend servers.
//!
//! One [`NetServer`][crate::NetServer] serves one process; the scale-out
//! story is many backend processes behind one [`Router`]. The router
//! consistent-hashes [`CompileRequest::key_digest`] — the same 128-bit
//! FNV-1a digest the result cache shards by, stable across processes —
//! onto a ring of virtual points, so:
//!
//! * **digest affinity** — a given request key always lands on the same
//!   live backend, which concentrates that key's cache entry (and its
//!   singleflight dedup) in one process instead of recompiling it N
//!   times across the fleet;
//! * **minimal remap on failure** — when a backend dies, only the keys
//!   it owned move (each to the next backend on the ring); every other
//!   key keeps its warm cache.
//!
//! Each backend gets a [`PoolClient`] (bounded connection pool, so one
//! blocked read never starves concurrent requests) and health state:
//! a transport or framing failure — connect refused, mid-stream close,
//! a `draining` refusal — marks the backend **down**, drops its pooled
//! sockets, and *replays the request on the next distinct backend along
//! the ring*. Replay is safe by construction: compiles are deterministic
//! and cached, so re-asking another backend returns byte-identical
//! artifacts. A downed backend is re-probed (fresh connection, full
//! stats round-trip) at most once per [`RouterConfig::probe_interval`],
//! and rejoins the ring the moment a probe answers.
//!
//! Request-level failures — unknown compiler, invalid target, an
//! `overloaded` shed that survived the client's retry policy — are *not*
//! failover events: every backend would answer the same, so they pass
//! through verbatim.
//!
//! # Elastic membership
//!
//! The ring is no longer fixed at construction: [`Router::add_backend`]
//! and [`Router::remove_backend`] resize it on a live router under a
//! versioned, RwLock'd ring state. Because each backend's virtual
//! points depend only on its own address, adding or removing a node
//! moves exactly the keys whose nearest ring point changes hands — the
//! same minimal-remap property the failure path has always had, now
//! asserted numerically by the membership tests. Removal *drains*: the
//! node leaves the ring immediately (no new keys route to it), requests
//! already in flight finish, and only then is its connection pool
//! dropped. The backend registry itself is append-only, so the indices
//! reported by [`Routed::backend`] and [`Router::backend_states`]
//! remain stable across membership changes; a re-added address revives
//! its original slot. [`Router::warmup_predicate`] derives the
//! owned-key predicate a prospective joiner ships to donors over the
//! warm-up replay protocol (see [`crate::warmup`]).

use crate::client::{ClientConfig, ClientError};
use crate::digest::fnv1a_128;
use crate::pool::PoolClient;
use crate::types::{BackendStats, CompileRequest, CompileResponse, ServeError};
use crate::warmup::OwnedPredicate;
use serde::{Deserialize, Serialize};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Tuning for one [`Router`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// The client configuration every pooled connection dials with
    /// (timeouts and the per-backend overload retry policy).
    pub client: ClientConfig,
    /// Connections each backend's [`PoolClient`] may have checked out at
    /// once.
    pub connections_per_backend: usize,
    /// Virtual points per backend on the hash ring. More points smooth
    /// the key distribution; 64 keeps the largest/smallest backend share
    /// within a few tens of percent even at small fleet sizes.
    pub replicas: usize,
    /// Minimum time between liveness probes of a downed backend. The
    /// probe runs inline on the first request to consider that backend
    /// after the interval elapses (connect-refused fails in
    /// microseconds on a dead local backend, so the inline cost is
    /// negligible next to a compile).
    pub probe_interval: Duration,
    /// How long [`Router::remove_backend`] waits for the removed
    /// backend's in-flight requests to finish before dropping its pool
    /// anyway. The node leaves the ring immediately either way; this
    /// bounds only the tail of the drain.
    pub drain_timeout: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            client: ClientConfig::default(),
            connections_per_backend: 4,
            replicas: 64,
            probe_interval: Duration::from_secs(1),
            drain_timeout: Duration::from_secs(10),
        }
    }
}

#[derive(Debug)]
struct Health {
    up: bool,
    /// When the backend was last probed (or marked down — mark-down
    /// starts the probe clock so the very next request does not pay an
    /// immediate, certainly-futile re-dial).
    last_probe: Option<Instant>,
}

#[derive(Debug)]
struct Backend {
    addr: SocketAddr,
    pool: PoolClient,
    health: Mutex<Health>,
    /// Whether the backend is currently a ring member. Removal flips
    /// this instead of deleting the registry slot, so indices stay
    /// stable and a re-added address revives its history.
    member: AtomicBool,
    /// Requests currently executing against this backend through this
    /// router — the drain condition for [`Router::remove_backend`].
    inflight: AtomicU64,
    served: AtomicU64,
    failovers: AtomicU64,
    downs: AtomicU64,
}

/// A serde-able snapshot of one backend's routing state, from
/// [`Router::backend_states`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BackendState {
    /// The backend's address, as text.
    pub addr: String,
    /// Whether the backend is currently a ring member (false once
    /// removed; its slot is retained for index stability).
    pub member: bool,
    /// Whether the router currently considers the backend live.
    pub healthy: bool,
    /// Requests this router had answered by this backend.
    pub served: u64,
    /// Requests this router replayed *away* from this backend after it
    /// failed mid-request.
    pub failovers: u64,
    /// Times this backend transitioned live → down.
    pub downs: u64,
}

/// A routed response: which backend answered, plus the response itself.
#[derive(Debug, Clone)]
pub struct Routed {
    /// Index of the answering backend (position in the router's
    /// append-only registry: construction order, then join order).
    pub backend: usize,
    /// The answering backend's address.
    pub addr: SocketAddr,
    /// Backends that failed over during *this* request before the
    /// answer (0 on the happy path).
    pub failovers: u32,
    /// The response, exactly the in-process serde type.
    pub response: CompileResponse,
}

/// The membership + ring snapshot guarded by the router's RwLock.
#[derive(Debug)]
struct RingState {
    /// Append-only backend registry; removed members stay (with
    /// `member == false`) so indices remain stable.
    backends: Vec<Arc<Backend>>,
    /// The consistent-hash ring: (point, backend index), sorted by
    /// point, rebuilt from the *member* backends on every membership
    /// change.
    ring: Vec<(u64, usize)>,
    /// Bumped on every membership change. Lets observers detect a
    /// resize without diffing address lists.
    version: u64,
}

impl RingState {
    /// Rebuilds the ring from the current member set.
    fn rebuild(&mut self, replicas: usize) {
        self.ring.clear();
        for (index, backend) in self.backends.iter().enumerate() {
            if !backend.member.load(Ordering::Relaxed) {
                continue;
            }
            for point in ring_points(backend.addr, replicas) {
                self.ring.push((point, index));
            }
        }
        self.ring.sort_unstable();
    }

    fn member_count(&self) -> usize {
        self.backends
            .iter()
            .filter(|b| b.member.load(Ordering::Relaxed))
            .count()
    }
}

/// The front-tier router. See the module docs for the routing,
/// failover, and elastic-membership contracts.
///
/// All methods take `&self`; the router is `Sync` and meant to be
/// shared across request threads.
#[derive(Debug)]
pub struct Router {
    state: RwLock<RingState>,
    config: RouterConfig,
}

impl Router {
    /// A router over `addrs` with the default [`RouterConfig`].
    ///
    /// # Errors
    /// [`ClientError::Server`] with kind `invalid-config` if `addrs` is
    /// empty or contains a duplicate address.
    pub fn new(addrs: Vec<SocketAddr>) -> Result<Router, ClientError> {
        Router::with_config(addrs, RouterConfig::default())
    }

    /// [`Router::new`] with explicit tuning.
    pub fn with_config(
        addrs: Vec<SocketAddr>,
        config: RouterConfig,
    ) -> Result<Router, ClientError> {
        if addrs.is_empty() {
            return Err(invalid_config(
                "a Router needs at least one backend address",
            ));
        }
        for (i, addr) in addrs.iter().enumerate() {
            if addrs[..i].contains(addr) {
                return Err(invalid_config(format!(
                    "duplicate backend address {addr}: each backend may appear on the ring once"
                )));
            }
        }
        let backends: Vec<Arc<Backend>> = addrs
            .into_iter()
            .map(|addr| Arc::new(new_backend(addr, &config)))
            .collect();
        let mut state = RingState {
            backends,
            ring: Vec::new(),
            version: 0,
        };
        state.rebuild(config.replicas);
        Ok(Router {
            state: RwLock::new(state),
            config,
        })
    }

    /// How many backends the registry holds (members and removed).
    pub fn backend_count(&self) -> usize {
        self.read().backends.len()
    }

    /// The registry addresses, in registry order (the indices
    /// [`Routed::backend`] and [`Router::route`] refer to). Includes
    /// removed backends; see [`Router::backend_states`] for membership.
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.read().backends.iter().map(|b| b.addr).collect()
    }

    /// The current ring version: 0 at construction, bumped by every
    /// [`Router::add_backend`] / [`Router::remove_backend`].
    pub fn version(&self) -> u64 {
        self.read().version
    }

    /// Adds `addr` to the ring on the live router. A previously removed
    /// `addr` revives its registry slot (keeping its counters); a new
    /// address appends one. Only keys whose nearest ring point now
    /// belongs to `addr` change owner — every other key keeps its warm
    /// backend. Returns the backend's registry index.
    ///
    /// # Errors
    /// Kind `invalid-config` if `addr` is already a ring member.
    pub fn add_backend(&self, addr: SocketAddr) -> Result<usize, ClientError> {
        let mut state = self.state.write().expect("ring state lock");
        let index = match state.backends.iter().position(|b| b.addr == addr) {
            Some(i) if state.backends[i].member.load(Ordering::Relaxed) => {
                return Err(invalid_config(format!(
                    "backend {addr} is already a ring member"
                )));
            }
            Some(i) => {
                // Revive the removed slot: fresh health, old counters.
                let backend = &state.backends[i];
                let mut health = backend.health.lock().expect("health mutex");
                health.up = true;
                health.last_probe = None;
                drop(health);
                backend.member.store(true, Ordering::Relaxed);
                i
            }
            None => {
                state
                    .backends
                    .push(Arc::new(new_backend(addr, &self.config)));
                state.backends.len() - 1
            }
        };
        state.version += 1;
        state.rebuild(self.config.replicas);
        Ok(index)
    }

    /// Removes `addr` from the ring on the live router, draining it:
    /// the node stops receiving new keys immediately, requests already
    /// in flight are given up to [`RouterConfig::drain_timeout`] to
    /// finish, and only then are its pooled connections dropped. The
    /// registry slot is retained (indices stay stable) and the address
    /// may be re-added later.
    ///
    /// # Errors
    /// Kind `invalid-config` if `addr` is not a current ring member, or
    /// if it is the *last* member — a router must keep at least one.
    pub fn remove_backend(&self, addr: SocketAddr) -> Result<(), ClientError> {
        let backend = {
            let mut state = self.state.write().expect("ring state lock");
            let index = state
                .backends
                .iter()
                .position(|b| b.addr == addr && b.member.load(Ordering::Relaxed))
                .ok_or_else(|| invalid_config(format!("backend {addr} is not a ring member")))?;
            if state.member_count() == 1 {
                return Err(invalid_config(format!(
                    "cannot remove {addr}: it is the last ring member"
                )));
            }
            state.backends[index].member.store(false, Ordering::Relaxed);
            state.version += 1;
            state.rebuild(self.config.replicas);
            Arc::clone(&state.backends[index])
        };
        // Drain outside the lock: new requests already cannot pick this
        // backend (it left the ring above); wait for in-flight ones.
        let deadline = Instant::now() + self.config.drain_timeout;
        while backend.inflight.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        backend.pool.clear_idle();
        Ok(())
    }

    /// The owned-key predicate a prospective joiner at `addr` would
    /// ship to warm-up donors: "the keys whose nearest ring point is
    /// mine, against the ring formed by the *current* members plus me".
    /// Computed against the pre-join ring on purpose — the donors are
    /// the keys' previous owners. Also correct for a probe-recovered
    /// member refreshing entries it may have lost: its own points are
    /// excluded from the "others" side.
    pub fn warmup_predicate(&self, addr: SocketAddr) -> OwnedPredicate {
        let state = self.read();
        let member_points = ring_points(addr, self.config.replicas);
        let mut other_points = Vec::new();
        for backend in &state.backends {
            if backend.addr != addr && backend.member.load(Ordering::Relaxed) {
                other_points.extend(ring_points(backend.addr, self.config.replicas));
            }
        }
        OwnedPredicate {
            member_points,
            other_points,
        }
    }

    /// The backend [`Router::request`] would try first for `req` right
    /// now: the first member on the ring from the request's digest
    /// point that is not currently marked down. `None` if every member
    /// is marked down. Side-effect-free (no probes, no dials) — this is
    /// the observability/affinity view, not the request path.
    pub fn route(&self, req: &CompileRequest) -> Option<usize> {
        self.candidates(req.key_digest())
            .into_iter()
            .find(|(_, b)| b.health.lock().expect("health mutex").up)
            .map(|(index, _)| index)
    }

    /// Submit-and-wait through the ring: try the request's candidate
    /// backends in ring order, failing over (and marking down) on
    /// transport-shaped failures, passing request-shaped failures
    /// through verbatim. Exhausting every backend returns a
    /// [`ClientError::Server`] with kind `unavailable` naming what was
    /// tried.
    pub fn request(&self, req: &CompileRequest) -> Result<Routed, ClientError> {
        let mut tried: Vec<String> = Vec::new();
        let mut failovers = 0u32;
        for (index, backend) in self.candidates(req.key_digest()) {
            if !self.usable(&backend) {
                tried.push(format!("{} is marked down", backend.addr));
                continue;
            }
            backend.inflight.fetch_add(1, Ordering::AcqRel);
            let outcome = backend.pool.request(req);
            backend.inflight.fetch_sub(1, Ordering::AcqRel);
            match outcome {
                Ok(response) => {
                    backend.served.fetch_add(1, Ordering::Relaxed);
                    return Ok(Routed {
                        backend: index,
                        addr: backend.addr,
                        failovers,
                        response,
                    });
                }
                Err(e) if failover_worthy(&e) => {
                    self.mark_down(&backend);
                    backend.failovers.fetch_add(1, Ordering::Relaxed);
                    failovers += 1;
                    tried.push(format!("{} failed over ({e})", backend.addr));
                }
                Err(e) => return Err(e),
            }
        }
        Err(ClientError::Server(ServeError::unavailable(
            tried.join("; "),
        )))
    }

    /// A routing-state snapshot per backend, in registry order.
    pub fn backend_states(&self) -> Vec<BackendState> {
        self.read()
            .backends
            .iter()
            .map(|b| BackendState {
                addr: b.addr.to_string(),
                member: b.member.load(Ordering::Relaxed),
                healthy: b.health.lock().expect("health mutex").up,
                served: b.served.load(Ordering::Relaxed),
                failovers: b.failovers.load(Ordering::Relaxed),
                downs: b.downs.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Wire-level stats from every *member* backend (a fresh
    /// identity-tagged snapshot each), in registry order. Per-backend
    /// errors are returned in place, not short-circuited — a fleet with
    /// one dead backend still reports the other N−1.
    pub fn backend_stats(&self) -> Vec<Result<BackendStats, ClientError>> {
        let backends: Vec<Arc<Backend>> = self
            .read()
            .backends
            .iter()
            .filter(|b| b.member.load(Ordering::Relaxed))
            .map(Arc::clone)
            .collect();
        backends.iter().map(|b| b.pool.backend_stats()).collect()
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, RingState> {
        self.state.read().expect("ring state lock")
    }

    /// The request's candidate backends: every current member exactly
    /// once, in ring order starting from the digest's point. The
    /// snapshot is taken under the read lock and released before any
    /// dialing, so a slow backend never blocks membership changes.
    fn candidates(&self, digest: u128) -> Vec<(usize, Arc<Backend>)> {
        let state = self.read();
        let members = state.member_count();
        let point = fold(digest);
        let start = state.ring.partition_point(|&(p, _)| p < point);
        let mut order: Vec<(usize, Arc<Backend>)> = Vec::with_capacity(members);
        for i in 0..state.ring.len() {
            let (_, index) = state.ring[(start + i) % state.ring.len()];
            if !order.iter().any(|&(seen, _)| seen == index) {
                order.push((index, Arc::clone(&state.backends[index])));
                if order.len() == members {
                    break;
                }
            }
        }
        order
    }

    /// Whether `backend` may be tried right now. Live backends: yes.
    /// Downed backends: only by probing — at most one probe per
    /// [`RouterConfig::probe_interval`] (the claim happens under the
    /// health lock, so concurrent requests cannot stampede a dead
    /// backend with dials), and the backend is usable again only once a
    /// probe completes a full stats round-trip.
    fn usable(&self, backend: &Backend) -> bool {
        {
            let mut health = backend.health.lock().expect("health mutex");
            if health.up {
                return true;
            }
            let due = health
                .last_probe
                .is_none_or(|at| at.elapsed() >= self.config.probe_interval);
            if !due {
                return false;
            }
            health.last_probe = Some(Instant::now());
        }
        match backend.pool.probe() {
            Ok(_) => {
                backend.health.lock().expect("health mutex").up = true;
                true
            }
            Err(_) => false,
        }
    }

    /// Marks a backend down after a transport-shaped failure: flips
    /// health (counting the transition once, however many threads saw
    /// the failure), starts the probe clock, and drops the pool's idle
    /// sockets — they predate the failure and prove nothing.
    fn mark_down(&self, backend: &Backend) {
        let mut health = backend.health.lock().expect("health mutex");
        if health.up {
            health.up = false;
            backend.downs.fetch_add(1, Ordering::Relaxed);
        }
        health.last_probe = Some(Instant::now());
        drop(health);
        backend.pool.clear_idle();
    }
}

fn new_backend(addr: SocketAddr, config: &RouterConfig) -> Backend {
    Backend {
        addr,
        pool: PoolClient::new(addr, config.client.clone(), config.connections_per_backend),
        health: Mutex::new(Health {
            up: true,
            last_probe: None,
        }),
        member: AtomicBool::new(true),
        inflight: AtomicU64::new(0),
        served: AtomicU64::new(0),
        failovers: AtomicU64::new(0),
        downs: AtomicU64::new(0),
    }
}

fn invalid_config(reason: impl std::fmt::Display) -> ClientError {
    ClientError::Server(ServeError::invalid_config(reason))
}

/// The virtual ring points one backend address owns: `replicas` folds
/// of `fnv1a_128("{addr}#{replica}")`. Shared between ring construction
/// and [`Router::warmup_predicate`], so the predicate a joiner ships is
/// by construction the same geometry the router will route by.
pub(crate) fn ring_points(addr: SocketAddr, replicas: usize) -> Vec<u64> {
    (0..replicas)
        .map(|replica| fold(fnv1a_128(format!("{addr}#{replica}").as_bytes())))
        .collect()
}

/// Folds the 128-bit request digest onto the 64-bit ring with a
/// splitmix64-style avalanche. FNV-1a diffuses weakly for short, similar
/// inputs (ring point pre-images differ by a few characters), so a plain
/// XOR/truncation fold clusters points and can starve a backend of ring
/// share entirely; the avalanche makes every input bit load-bearing.
pub(crate) fn fold(digest: u128) -> u64 {
    let lo = digest as u64;
    let hi = (digest >> 64) as u64;
    let mut z = hi.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = z.wrapping_add(lo);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Whether an error says "this *backend* failed" (failover, replay on
/// the next ring candidate) rather than "this *request* failed" (pass
/// through — every backend would answer the same).
///
/// `draining` counts as backend-shaped: the server announced it is going
/// away, and the request was refused unserved, so replaying it elsewhere
/// is exactly the zero-loss drain story.
fn failover_worthy(e: &ClientError) -> bool {
    match e {
        ClientError::Io { .. } | ClientError::Proto(_) | ClientError::Closed { .. } => true,
        ClientError::Server(serve) => serve.kind == "draining",
        ClientError::Overloaded { .. } => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<SocketAddr> {
        // Fixed fake addresses: ring construction never dials.
        (0..n)
            .map(|i| format!("127.0.0.1:{}", 4000 + i).parse().unwrap())
            .collect()
    }

    fn owners(router: &Router, digest: u128) -> Vec<usize> {
        router
            .candidates(digest)
            .into_iter()
            .map(|(index, _)| index)
            .collect()
    }

    #[test]
    fn ring_is_deterministic_and_candidates_cover_every_backend_once() {
        let a = Router::new(addrs(3)).unwrap();
        let b = Router::new(addrs(3)).unwrap();
        assert_eq!(a.read().ring, b.read().ring);
        for digest in (0..200u128).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15)) {
            let order = owners(&a, digest);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2], "order {order:?}");
            assert_eq!(order, owners(&b, digest));
        }
    }

    #[test]
    fn virtual_points_spread_first_choice_across_backends() {
        let router = Router::new(addrs(4)).unwrap();
        let mut first = [0usize; 4];
        for digest in (0..4000u128).map(|i| fnv1a_128(&i.to_le_bytes())) {
            first[owners(&router, digest)[0]] += 1;
        }
        for (index, &count) in first.iter().enumerate() {
            // With 64 replicas each of 4 backends owns roughly a quarter
            // of the ring; a backend owning under 5% would mean the
            // virtual points failed to spread.
            assert!(count > 200, "backend {index} owns only {count}/4000 keys");
        }
    }

    #[test]
    fn killing_a_backend_remaps_only_its_own_keys() {
        let router = Router::new(addrs(3)).unwrap();
        let digests: Vec<u128> = (0..500u128).map(|i| fnv1a_128(&i.to_le_bytes())).collect();
        let before: Vec<usize> = digests.iter().map(|&d| owners(&router, d)[0]).collect();
        // Simulate backend 1 dying: its keys move to the next ring
        // candidate; keys owned by 0 and 2 must not move at all.
        for (&digest, &owner) in digests.iter().zip(&before) {
            let order = owners(&router, digest);
            let survivor = order.iter().copied().find(|&b| b != 1).unwrap();
            if owner != 1 {
                assert_eq!(survivor, owner, "a live backend's key moved");
            }
        }
    }

    #[test]
    fn constructors_reject_empty_and_duplicate_address_lists() {
        let err = Router::new(Vec::new()).unwrap_err();
        match err {
            ClientError::Server(e) => {
                assert_eq!(e.kind, "invalid-config");
                assert!(e.error.contains("at least one"), "{}", e.error);
            }
            other => panic!("expected invalid-config, got {other:?}"),
        }
        let mut list = addrs(3);
        list.push(list[1]);
        let err = Router::new(list).unwrap_err();
        match err {
            ClientError::Server(e) => {
                assert_eq!(e.kind, "invalid-config");
                assert!(e.error.contains("duplicate"), "{}", e.error);
                assert!(e.error.contains("127.0.0.1:4001"), "{}", e.error);
            }
            other => panic!("expected invalid-config, got {other:?}"),
        }
    }

    #[test]
    fn add_backend_moves_only_keys_the_joiner_now_owns() {
        let router = Router::new(addrs(3)).unwrap();
        let digests: Vec<u128> = (0..2000u128).map(|i| fnv1a_128(&i.to_le_bytes())).collect();
        let before: Vec<usize> = digests.iter().map(|&d| owners(&router, d)[0]).collect();
        let joiner: SocketAddr = "127.0.0.1:4999".parse().unwrap();
        let predicate = router.warmup_predicate(joiner);
        let joiner_index = router.add_backend(joiner).unwrap();
        assert_eq!(joiner_index, 3);
        assert_eq!(router.version(), 1);
        let mut moved = 0usize;
        for (&digest, &owner) in digests.iter().zip(&before) {
            let now = owners(&router, digest)[0];
            if now != owner {
                // Every key that changed owner moved *to the joiner*…
                assert_eq!(now, joiner_index, "key moved to a non-joiner backend");
                // …and the pre-join predicate agreed it would.
                assert!(predicate.owns(digest), "predicate missed a moved key");
                moved += 1;
            } else {
                assert!(!predicate.owns(digest), "predicate claimed an unmoved key");
            }
        }
        // The joiner owns roughly 1/4 of the keyspace; far outside
        // [5%, 50%] would mean the ring geometry broke.
        assert!(
            (100..1000).contains(&moved),
            "joiner took {moved}/2000 keys"
        );
    }

    #[test]
    fn remove_backend_moves_only_the_removed_nodes_keys() {
        let router = Router::new(addrs(4)).unwrap();
        let digests: Vec<u128> = (0..2000u128).map(|i| fnv1a_128(&i.to_le_bytes())).collect();
        let before: Vec<usize> = digests.iter().map(|&d| owners(&router, d)[0]).collect();
        let victim = router.addrs()[2];
        router.remove_backend(victim).unwrap();
        assert_eq!(router.version(), 1);
        for (&digest, &owner) in digests.iter().zip(&before) {
            let now = owners(&router, digest)[0];
            if owner == 2 {
                assert_ne!(now, 2, "a key stayed on the removed backend");
            } else {
                assert_eq!(now, owner, "a surviving backend's key moved");
            }
        }
        // The registry keeps the slot; the ring does not.
        assert_eq!(router.backend_count(), 4);
        let states = router.backend_states();
        assert!(!states[2].member);
        assert!(states.iter().enumerate().all(|(i, s)| s.member || i == 2));
    }

    #[test]
    fn membership_edge_cases_are_refused() {
        let router = Router::new(addrs(2)).unwrap();
        // Duplicate add.
        let err = router.add_backend(router.addrs()[0]).unwrap_err();
        assert!(matches!(err, ClientError::Server(ref e) if e.kind == "invalid-config"));
        // Unknown remove.
        let unknown: SocketAddr = "127.0.0.1:9999".parse().unwrap();
        let err = router.remove_backend(unknown).unwrap_err();
        assert!(matches!(err, ClientError::Server(ref e) if e.kind == "invalid-config"));
        // Removing down to one member is fine; removing the last is not.
        router.remove_backend(router.addrs()[1]).unwrap();
        let err = router.remove_backend(router.addrs()[0]).unwrap_err();
        assert!(matches!(err, ClientError::Server(ref e) if e.kind == "invalid-config"));
        assert_eq!(router.version(), 1);
    }

    #[test]
    fn readding_a_removed_backend_revives_its_slot_and_keys() {
        let router = Router::new(addrs(3)).unwrap();
        let digests: Vec<u128> = (0..500u128).map(|i| fnv1a_128(&i.to_le_bytes())).collect();
        let before: Vec<usize> = digests.iter().map(|&d| owners(&router, d)[0]).collect();
        let addr = router.addrs()[1];
        router.remove_backend(addr).unwrap();
        assert_eq!(router.add_backend(addr).unwrap(), 1);
        assert_eq!(
            router.backend_count(),
            3,
            "revival must not grow the registry"
        );
        assert_eq!(router.version(), 2);
        let after: Vec<usize> = digests.iter().map(|&d| owners(&router, d)[0]).collect();
        assert_eq!(
            before, after,
            "a remove/re-add round trip must restore ownership"
        );
    }

    #[test]
    fn fold_distinguishes_the_digest_halves() {
        // A plain XOR fold maps (lo, hi) and (hi, lo) to the same ring
        // point; the avalanche must not.
        assert_ne!(fold(1), fold(1 << 64));
        assert_ne!(fold(0), fold(u128::MAX));
    }
}
