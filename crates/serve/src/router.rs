//! The front tier: consistent-hash routing across N backend servers.
//!
//! One [`NetServer`][crate::NetServer] serves one process; the scale-out
//! story is many backend processes behind one [`Router`]. The router
//! consistent-hashes [`CompileRequest::key_digest`] — the same 128-bit
//! FNV-1a digest the result cache shards by, stable across processes —
//! onto a ring of virtual points, so:
//!
//! * **digest affinity** — a given request key always lands on the same
//!   live backend, which concentrates that key's cache entry (and its
//!   singleflight dedup) in one process instead of recompiling it N
//!   times across the fleet;
//! * **minimal remap on failure** — when a backend dies, only the keys
//!   it owned move (each to the next backend on the ring); every other
//!   key keeps its warm cache.
//!
//! Each backend gets a [`PoolClient`] (bounded connection pool, so one
//! blocked read never starves concurrent requests) and health state:
//! a transport or framing failure — connect refused, mid-stream close,
//! a `draining` refusal — marks the backend **down**, drops its pooled
//! sockets, and *replays the request on the next distinct backend along
//! the ring*. Replay is safe by construction: compiles are deterministic
//! and cached, so re-asking another backend returns byte-identical
//! artifacts. A downed backend is re-probed (fresh connection, full
//! stats round-trip) at most once per [`RouterConfig::probe_interval`],
//! and rejoins the ring the moment a probe answers.
//!
//! Request-level failures — unknown compiler, invalid target, an
//! `overloaded` shed that survived the client's retry policy — are *not*
//! failover events: every backend would answer the same, so they pass
//! through verbatim.

use crate::client::{ClientConfig, ClientError};
use crate::digest::fnv1a_128;
use crate::pool::PoolClient;
use crate::types::{BackendStats, CompileRequest, CompileResponse, ServeError};
use serde::{Deserialize, Serialize};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Tuning for one [`Router`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// The client configuration every pooled connection dials with
    /// (timeouts and the per-backend overload retry policy).
    pub client: ClientConfig,
    /// Connections each backend's [`PoolClient`] may have checked out at
    /// once.
    pub connections_per_backend: usize,
    /// Virtual points per backend on the hash ring. More points smooth
    /// the key distribution; 64 keeps the largest/smallest backend share
    /// within a few tens of percent even at small fleet sizes.
    pub replicas: usize,
    /// Minimum time between liveness probes of a downed backend. The
    /// probe runs inline on the first request to consider that backend
    /// after the interval elapses (connect-refused fails in
    /// microseconds on a dead local backend, so the inline cost is
    /// negligible next to a compile).
    pub probe_interval: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            client: ClientConfig::default(),
            connections_per_backend: 4,
            replicas: 64,
            probe_interval: Duration::from_secs(1),
        }
    }
}

#[derive(Debug)]
struct Health {
    up: bool,
    /// When the backend was last probed (or marked down — mark-down
    /// starts the probe clock so the very next request does not pay an
    /// immediate, certainly-futile re-dial).
    last_probe: Option<Instant>,
}

#[derive(Debug)]
struct Backend {
    addr: SocketAddr,
    pool: PoolClient,
    health: Mutex<Health>,
    served: AtomicU64,
    failovers: AtomicU64,
    downs: AtomicU64,
}

/// A serde-able snapshot of one backend's routing state, from
/// [`Router::backend_states`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BackendState {
    /// The backend's address, as text.
    pub addr: String,
    /// Whether the router currently considers the backend live.
    pub healthy: bool,
    /// Requests this router had answered by this backend.
    pub served: u64,
    /// Requests this router replayed *away* from this backend after it
    /// failed mid-request.
    pub failovers: u64,
    /// Times this backend transitioned live → down.
    pub downs: u64,
}

/// A routed response: which backend answered, plus the response itself.
#[derive(Debug, Clone)]
pub struct Routed {
    /// Index of the answering backend (position in the address list the
    /// router was built with).
    pub backend: usize,
    /// The answering backend's address.
    pub addr: SocketAddr,
    /// Backends that failed over during *this* request before the
    /// answer (0 on the happy path).
    pub failovers: u32,
    /// The response, exactly the in-process serde type.
    pub response: CompileResponse,
}

/// The front-tier router. See the module docs for the routing and
/// failover contracts.
///
/// All methods take `&self`; the router is `Sync` and meant to be
/// shared across request threads.
#[derive(Debug)]
pub struct Router {
    backends: Vec<Backend>,
    /// The consistent-hash ring: (point, backend index), sorted by
    /// point. Built once — backends are fixed for the router's life;
    /// liveness is handled by health state, not ring membership, so a
    /// recovered backend gets its original keys back.
    ring: Vec<(u64, usize)>,
    config: RouterConfig,
}

impl Router {
    /// A router over `addrs` with the default [`RouterConfig`].
    ///
    /// # Panics
    /// If `addrs` is empty — a router with no backends cannot route.
    pub fn new(addrs: Vec<SocketAddr>) -> Router {
        Router::with_config(addrs, RouterConfig::default())
    }

    /// [`Router::new`] with explicit tuning.
    pub fn with_config(addrs: Vec<SocketAddr>, config: RouterConfig) -> Router {
        assert!(
            !addrs.is_empty(),
            "a Router needs at least one backend address"
        );
        let backends: Vec<Backend> = addrs
            .into_iter()
            .map(|addr| Backend {
                addr,
                pool: PoolClient::new(addr, config.client.clone(), config.connections_per_backend),
                health: Mutex::new(Health {
                    up: true,
                    last_probe: None,
                }),
                served: AtomicU64::new(0),
                failovers: AtomicU64::new(0),
                downs: AtomicU64::new(0),
            })
            .collect();
        let mut ring: Vec<(u64, usize)> = Vec::with_capacity(backends.len() * config.replicas);
        for (index, backend) in backends.iter().enumerate() {
            for replica in 0..config.replicas {
                let point = fold(fnv1a_128(format!("{}#{replica}", backend.addr).as_bytes()));
                ring.push((point, index));
            }
        }
        ring.sort_unstable();
        Router {
            backends,
            ring,
            config,
        }
    }

    /// How many backends the router was built with (live or not).
    pub fn backend_count(&self) -> usize {
        self.backends.len()
    }

    /// The backend addresses, in construction order (the indices
    /// [`Routed::backend`] and [`Router::route`] refer to).
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.backends.iter().map(|b| b.addr).collect()
    }

    /// The backend [`Router::request`] would try first for `req` right
    /// now: the first backend on the ring from the request's digest
    /// point that is not currently marked down. `None` if every backend
    /// is marked down. Side-effect-free (no probes, no dials) — this is
    /// the observability/affinity view, not the request path.
    pub fn route(&self, req: &CompileRequest) -> Option<usize> {
        self.candidates(req.key_digest())
            .into_iter()
            .find(|&b| self.backends[b].health.lock().expect("health mutex").up)
    }

    /// Submit-and-wait through the ring: try the request's candidate
    /// backends in ring order, failing over (and marking down) on
    /// transport-shaped failures, passing request-shaped failures
    /// through verbatim. Exhausting every backend returns a
    /// [`ClientError::Server`] with kind `unavailable` naming what was
    /// tried.
    pub fn request(&self, req: &CompileRequest) -> Result<Routed, ClientError> {
        let mut tried: Vec<String> = Vec::new();
        let mut failovers = 0u32;
        for index in self.candidates(req.key_digest()) {
            let backend = &self.backends[index];
            if !self.usable(index) {
                tried.push(format!("{} is marked down", backend.addr));
                continue;
            }
            match backend.pool.request(req) {
                Ok(response) => {
                    backend.served.fetch_add(1, Ordering::Relaxed);
                    return Ok(Routed {
                        backend: index,
                        addr: backend.addr,
                        failovers,
                        response,
                    });
                }
                Err(e) if failover_worthy(&e) => {
                    self.mark_down(index);
                    backend.failovers.fetch_add(1, Ordering::Relaxed);
                    failovers += 1;
                    tried.push(format!("{} failed over ({e})", backend.addr));
                }
                Err(e) => return Err(e),
            }
        }
        Err(ClientError::Server(ServeError::unavailable(
            tried.join("; "),
        )))
    }

    /// A routing-state snapshot per backend, in construction order.
    pub fn backend_states(&self) -> Vec<BackendState> {
        self.backends
            .iter()
            .map(|b| BackendState {
                addr: b.addr.to_string(),
                healthy: b.health.lock().expect("health mutex").up,
                served: b.served.load(Ordering::Relaxed),
                failovers: b.failovers.load(Ordering::Relaxed),
                downs: b.downs.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Wire-level stats from every backend (a fresh identity-tagged
    /// snapshot each), in construction order. Per-backend errors are
    /// returned in place, not short-circuited — a fleet with one dead
    /// backend still reports the other N−1.
    pub fn backend_stats(&self) -> Vec<Result<BackendStats, ClientError>> {
        self.backends
            .iter()
            .map(|b| b.pool.backend_stats())
            .collect()
    }

    /// The request's candidate backends: every backend exactly once, in
    /// ring order starting from the digest's point.
    fn candidates(&self, digest: u128) -> Vec<usize> {
        let point = fold(digest);
        let start = self.ring.partition_point(|&(p, _)| p < point);
        let mut order: Vec<usize> = Vec::with_capacity(self.backends.len());
        for i in 0..self.ring.len() {
            let (_, index) = self.ring[(start + i) % self.ring.len()];
            if !order.contains(&index) {
                order.push(index);
                if order.len() == self.backends.len() {
                    break;
                }
            }
        }
        order
    }

    /// Whether `index` may be tried right now. Live backends: yes.
    /// Downed backends: only by probing — at most one probe per
    /// [`RouterConfig::probe_interval`] (the claim happens under the
    /// health lock, so concurrent requests cannot stampede a dead
    /// backend with dials), and the backend is usable again only once a
    /// probe completes a full stats round-trip.
    fn usable(&self, index: usize) -> bool {
        let backend = &self.backends[index];
        {
            let mut health = backend.health.lock().expect("health mutex");
            if health.up {
                return true;
            }
            let due = health
                .last_probe
                .is_none_or(|at| at.elapsed() >= self.config.probe_interval);
            if !due {
                return false;
            }
            health.last_probe = Some(Instant::now());
        }
        match backend.pool.probe() {
            Ok(_) => {
                backend.health.lock().expect("health mutex").up = true;
                true
            }
            Err(_) => false,
        }
    }

    /// Marks a backend down after a transport-shaped failure: flips
    /// health (counting the transition once, however many threads saw
    /// the failure), starts the probe clock, and drops the pool's idle
    /// sockets — they predate the failure and prove nothing.
    fn mark_down(&self, index: usize) {
        let backend = &self.backends[index];
        let mut health = backend.health.lock().expect("health mutex");
        if health.up {
            health.up = false;
            backend.downs.fetch_add(1, Ordering::Relaxed);
        }
        health.last_probe = Some(Instant::now());
        drop(health);
        backend.pool.clear_idle();
    }
}

/// Folds the 128-bit request digest onto the 64-bit ring with a
/// splitmix64-style avalanche. FNV-1a diffuses weakly for short, similar
/// inputs (ring point pre-images differ by a few characters), so a plain
/// XOR/truncation fold clusters points and can starve a backend of ring
/// share entirely; the avalanche makes every input bit load-bearing.
fn fold(digest: u128) -> u64 {
    let lo = digest as u64;
    let hi = (digest >> 64) as u64;
    let mut z = hi.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = z.wrapping_add(lo);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Whether an error says "this *backend* failed" (failover, replay on
/// the next ring candidate) rather than "this *request* failed" (pass
/// through — every backend would answer the same).
///
/// `draining` counts as backend-shaped: the server announced it is going
/// away, and the request was refused unserved, so replaying it elsewhere
/// is exactly the zero-loss drain story.
fn failover_worthy(e: &ClientError) -> bool {
    match e {
        ClientError::Io { .. } | ClientError::Proto(_) | ClientError::Closed { .. } => true,
        ClientError::Server(serve) => serve.kind == "draining",
        ClientError::Overloaded { .. } => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<SocketAddr> {
        // Fixed fake addresses: ring construction never dials.
        (0..n)
            .map(|i| format!("127.0.0.1:{}", 4000 + i).parse().unwrap())
            .collect()
    }

    #[test]
    fn ring_is_deterministic_and_candidates_cover_every_backend_once() {
        let a = Router::new(addrs(3));
        let b = Router::new(addrs(3));
        assert_eq!(a.ring, b.ring);
        for digest in (0..200u128).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15)) {
            let order = a.candidates(digest);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2], "order {order:?}");
            assert_eq!(order, b.candidates(digest));
        }
    }

    #[test]
    fn virtual_points_spread_first_choice_across_backends() {
        let router = Router::new(addrs(4));
        let mut first = [0usize; 4];
        for digest in (0..4000u128).map(|i| fnv1a_128(&i.to_le_bytes())) {
            first[router.candidates(digest)[0]] += 1;
        }
        for (index, &count) in first.iter().enumerate() {
            // With 64 replicas each of 4 backends owns roughly a quarter
            // of the ring; a backend owning under 5% would mean the
            // virtual points failed to spread.
            assert!(count > 200, "backend {index} owns only {count}/4000 keys");
        }
    }

    #[test]
    fn killing_a_backend_remaps_only_its_own_keys() {
        let router = Router::new(addrs(3));
        let digests: Vec<u128> = (0..500u128).map(|i| fnv1a_128(&i.to_le_bytes())).collect();
        let before: Vec<usize> = digests.iter().map(|&d| router.candidates(d)[0]).collect();
        // Simulate backend 1 dying: its keys move to the next ring
        // candidate; keys owned by 0 and 2 must not move at all.
        for (&digest, &owner) in digests.iter().zip(&before) {
            let order = router.candidates(digest);
            let survivor = order.iter().copied().find(|&b| b != 1).unwrap();
            if owner != 1 {
                assert_eq!(survivor, owner, "a live backend's key moved");
            }
        }
    }

    #[test]
    fn fold_distinguishes_the_digest_halves() {
        // A plain XOR fold maps (lo, hi) and (hi, lo) to the same ring
        // point; the avalanche must not.
        assert_ne!(fold(1), fold(1 << 64));
        assert_ne!(fold(0), fold(u128::MAX));
    }
}
