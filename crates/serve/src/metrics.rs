//! Lock-free admission metrics.
//!
//! Every counter the service maintains lives here as an `AtomicU64`, so
//! recording a hit, miss, dedup join, eviction, shed, or error never
//! takes a lock — and reading [`crate::ServeStats`] never contends with
//! the hit path. (The old service already kept its counters atomic, but
//! eviction counts were derived under the cache lock and stats reads
//! locked the cache for occupancy; both are lock-free now — occupancy is
//! summed from per-shard lengths with each shard locked only for its
//! `len()`.)
//!
//! Latency percentiles come from a fixed-size **reservoir**: a ring of
//! `AtomicU64` slots (f64 seconds as bits) written at a
//! `fetch_add`-claimed position, wrapping. Writers never block; a stats
//! read snapshots the ring and sorts a copy. With 4096 slots the
//! snapshot always reflects the most recent ~4096 requests — exactly the
//! window a p50/p99 gauge should describe on a service whose load shifts.
//!
//! Claiming a slot and storing its value are two separate atomic steps,
//! so a snapshot can race a writer that claimed but has not stored yet.
//! Unwritten slots hold a NaN sentinel ([`EMPTY_SLOT`]) that no finite
//! latency ever bit-matches, and `percentiles` skips them — an
//! in-progress write is simply absent from the sample instead of
//! appearing as a phantom `0.0` that drags p50 (and with it the
//! `retry_after_hint_ms` overload hint) toward the floor.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Slots in the latency ring (a power of two keeps the wrap cheap).
const RESERVOIR_SLOTS: usize = 4096;

/// The bit pattern of a slot no writer has stored yet: a quiet NaN.
/// `f64::to_bits` of a finite latency can never equal it, so "empty" and
/// "recorded" are distinguishable without a second bookkeeping array.
const EMPTY_SLOT: u64 = u64::MAX;

/// A lock-free sliding-window latency sample.
#[derive(Debug)]
pub(crate) struct LatencyReservoir {
    slots: Box<[AtomicU64]>,
    next: AtomicUsize,
}

impl LatencyReservoir {
    pub fn new() -> Self {
        LatencyReservoir {
            slots: (0..RESERVOIR_SLOTS)
                .map(|_| AtomicU64::new(EMPTY_SLOT))
                .collect(),
            next: AtomicUsize::new(0),
        }
    }

    /// Records one request's service-side wall time.
    pub fn record(&self, secs: f64) {
        self.commit(self.claim(), secs);
    }

    /// Claims the next ring slot. Until [`LatencyReservoir::commit`]
    /// stores into it, the slot keeps whatever it held before — the empty
    /// sentinel on a fresh ring, the previous generation's value after a
    /// wrap — and `percentiles` samples that, never a phantom zero.
    fn claim(&self) -> usize {
        self.next.fetch_add(1, Ordering::Relaxed) & (RESERVOIR_SLOTS - 1)
    }

    /// Stores a claimed slot's value, completing the record.
    fn commit(&self, slot: usize, secs: f64) {
        // A finite latency never bit-matches the NaN sentinel; guard the
        // impossible anyway so a poisoned input cannot fake an empty slot.
        let bits = secs.to_bits();
        let bits = if bits == EMPTY_SLOT { 0 } else { bits };
        self.slots[slot].store(bits, Ordering::Relaxed);
    }

    /// (p50, p99) over the window, in seconds; zeros before any traffic.
    pub fn percentiles(&self) -> (f64, f64) {
        let mut sample: Vec<f64> = self
            .slots
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .filter(|&bits| bits != EMPTY_SLOT)
            .map(f64::from_bits)
            .collect();
        if sample.is_empty() {
            return (0.0, 0.0);
        }
        sample.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let at = |p: f64| sample[((p * (sample.len() - 1) as f64).round()) as usize];
        (at(0.50), at(0.99))
    }
}

/// The service's counter set. Field meanings match [`crate::ServeStats`];
/// `requests = hits + misses + dedup_joins` always holds (errors are the
/// subset of misses whose compile failed, plus the followers that
/// received that failure — followers count as dedup joins either way).
#[derive(Debug)]
pub(crate) struct Metrics {
    pub requests: AtomicU64,
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub dedup_joins: AtomicU64,
    pub evictions: AtomicU64,
    pub shed: AtomicU64,
    pub errors: AtomicU64,
    pub latency: LatencyReservoir,
}

impl Metrics {
    pub fn new() -> Self {
        Metrics {
            requests: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            dedup_joins: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            latency: LatencyReservoir::new(),
        }
    }

    /// Relaxed increment — every counter is monotonic and independent.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// Connection-level counters for the network front end, one
/// `AtomicU64` per event class — same lock-free discipline as
/// [`Metrics`]. The serve-path counters above count *requests*; these
/// count *connections and frames*, so a fault-injection storm (garbage
/// bytes, slowloris stalls, mid-stream disconnects) is visible even
/// though none of it ever becomes a request.
#[derive(Debug, Default)]
pub(crate) struct NetCounters {
    /// Connections the accept loop admitted.
    pub accepted: AtomicU64,
    /// Connections turned away at accept time because the server was
    /// draining (each got a goodbye frame, not a bare reset).
    pub denied: AtomicU64,
    /// Connections closed by a protocol violation (bad magic/version/
    /// kind, oversize length, malformed frame stream).
    pub proto_errors: AtomicU64,
    /// Connections closed because a frame sat incomplete past the
    /// per-frame read deadline (slow or stalled clients).
    pub slow_timeouts: AtomicU64,
    /// Connections whose peer vanished (clean or mid-frame EOF) without
    /// a goodbye handshake.
    pub disconnects: AtomicU64,
    /// Connections closed gracefully with a server goodbye frame.
    pub goodbyes: AtomicU64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservoir_percentiles_track_the_sample() {
        let r = LatencyReservoir::new();
        assert_eq!(r.percentiles(), (0.0, 0.0));
        for i in 1..=100 {
            r.record(i as f64 * 1e-3);
        }
        let (p50, p99) = r.percentiles();
        assert!((p50 - 0.050).abs() < 2e-3, "p50 {p50}");
        assert!((p99 - 0.099).abs() < 2e-3, "p99 {p99}");
    }

    #[test]
    fn reservoir_wraps_to_the_most_recent_window() {
        let r = LatencyReservoir::new();
        // Overfill: a first generation of slow samples, then a full ring
        // of fast ones. The slow generation must age out entirely.
        for _ in 0..RESERVOIR_SLOTS {
            r.record(1.0);
        }
        for _ in 0..RESERVOIR_SLOTS {
            r.record(1e-6);
        }
        let (p50, p99) = r.percentiles();
        assert_eq!((p50, p99), (1e-6, 1e-6));
    }

    #[test]
    fn percentiles_skip_claimed_but_unwritten_slots() {
        // The race this pins: `record` is claim-then-store, so a stats
        // snapshot can land between a writer's two steps. Simulate eleven
        // in-progress writers (slots claimed, values not yet stored)
        // around ten committed 1.0 s samples: the unwritten slots must be
        // invisible, not sampled as 0.0 (which would drag p50 — and the
        // retry-after hint derived from it — to the floor).
        let r = LatencyReservoir::new();
        for _ in 0..10 {
            r.record(1.0);
        }
        for _ in 0..11 {
            let _ = r.claim();
        }
        assert_eq!(r.percentiles(), (1.0, 1.0));
        // A late commit into a claimed slot joins the sample normally.
        r.commit(r.claim(), 3.0);
        let (p50, p99) = r.percentiles();
        assert_eq!((p50, p99), (1.0, 3.0));
    }

    #[test]
    fn concurrent_records_never_lose_the_window_shape() {
        let r = std::sync::Arc::new(LatencyReservoir::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let r = std::sync::Arc::clone(&r);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        r.record(5e-4);
                    }
                });
            }
        });
        let (p50, p99) = r.percentiles();
        assert_eq!((p50, p99), (5e-4, 5e-4));
    }
}
