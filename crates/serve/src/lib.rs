//! # qft-serve — the batched/concurrent compile service
//!
//! The ROADMAP's serving layer over the pipeline API: one process-wide
//! [`Registry`] shared by every request, a bounded worker pool (std
//! threads + channels, the same std-only convention as the bench
//! harness's sweep bins), and a keyed LRU result cache, wrapped in serde
//! request/response types so the whole surface speaks JSON.
//!
//! * [`CompileRequest`] — compiler name + compact target spec
//!   (`"lnn:16"`, parsed and *validated* by [`qft_core::Target::parse`])
//!   + a full [`CompileOptions`] set (missing fields default);
//! * [`CompileService`] — [`CompileService::compile`] for one request,
//!   [`CompileService::compile_batch`] to fan a batch across the worker
//!   pool; malformed input comes back as descriptive [`ServeError`] JSON,
//!   never a panic;
//! * [`CompileResponse`] — the [`CompileResult`] artifact plus cache and
//!   timing metadata. Cached results are **byte-deterministic**: wall
//!   times are stripped from the artifact (they live in the response
//!   metadata instead), so a cache hit returns bytes identical to the
//!   cold miss and N threads compiling the same request all serialize
//!   the same artifact;
//! * [`ServeStats`] — hit/miss/eviction/error counters, serde-able for
//!   dashboards.
//!
//! ```
//! use qft_serve::{CompileRequest, CompileService};
//!
//! let service = CompileService::new();
//! let req = CompileRequest::new("heavyhex", "heavyhex:2");
//! let cold = service.compile(&req).unwrap();
//! let warm = service.compile(&req).unwrap();
//! assert!(!cold.cached && warm.cached);
//! assert_eq!(
//!     serde_json::to_string(&cold.result).unwrap(),
//!     serde_json::to_string(&warm.result).unwrap(),
//! );
//! ```

#![warn(missing_docs)]

mod cache;
pub mod service;
pub mod types;

pub use service::{CompileService, DEFAULT_CACHE_CAPACITY};
pub use types::{CompileRequest, CompileResponse, ServeError, ServeStats};

use qft_core::Registry;
use std::sync::OnceLock;

/// The process-wide shared compiler registry: the paper's four analytical
/// mappers plus the three baselines, built once behind a `OnceLock` and
/// shared by every service, thread, and caller for the life of the
/// process. `qft_kernels::registry()` delegates here, so the facade crate
/// and the service always agree on the instance.
pub fn shared_registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut r = Registry::with_core();
        qft_baselines::register_baselines(&mut r);
        r
    })
}
