//! # qft-serve — the compile service at production concurrency
//!
//! The ROADMAP's serving layer over the pipeline API: one process-wide
//! [`Registry`] shared by every request, wrapped in serde
//! request/response types so the whole surface speaks JSON, and built to
//! stay fast when many threads pile on at once:
//!
//! * **Sharded result cache** ([`crate::cache`]) — N independently-locked
//!   LRU shards with O(1) recency, keyed by a 128-bit digest of the
//!   canonical request JSON ([`crate::digest`]), so cached hits scale
//!   with threads instead of convoying on one global mutex;
//! * **Singleflight miss dedup** ([`crate::flight`]) — a duplicate storm
//!   of N identical concurrent requests performs exactly **one** compile;
//!   the other N−1 block on the in-flight entry and share the same
//!   `Arc<CompileResult>`;
//! * **Persistent worker pool** — `workers` threads spawned once at
//!   service construction drain a bounded admission queue; a full queue
//!   blocks the submitter or sheds with a descriptive `overloaded`
//!   error per the [`Backpressure`] policy;
//! * **Streaming + batch traffic** — [`CompileService::compile`] for
//!   synchronous single requests, [`CompileService::submit`] /
//!   [`CompileService::stream`] for pipelined submit/recv streams, and
//!   [`CompileService::compile_batch`] for order-preserving batches;
//! * [`ServeStats`] — lock-free admission metrics: hits, misses,
//!   dedup joins, evictions, sheds, queue depth, in-flight compiles, and
//!   a p50/p99 latency window, serde-able for dashboards, plus a
//!   [`ServeStats::hit_rate`] helper;
//! * **Network front end** ([`crate::proto`]/[`crate::server`]/
//!   [`crate::client`]) — a std-only TCP layer speaking length-prefixed
//!   JSON frames (spec in `crates/serve/PROTOCOL.md`): [`NetServer`]
//!   runs a thread-per-connection accept loop over one shared service
//!   with graceful drain, a wire-level `stats` kind, and shed
//!   backpressure surfaced as a structured `overloaded` frame with a
//!   retry-after hint; [`NetClient`] is the blocking client with a
//!   retry-after-honoring [`RetryPolicy`];
//! * **Front-tier router** ([`crate::router`]/[`crate::pool`]) —
//!   horizontal scale-out: a [`Router`] consistent-hashes
//!   [`CompileRequest::key_digest`] across N backend [`NetServer`]
//!   addresses (digest affinity concentrates each key's cache entry and
//!   singleflight in one process), multiplexing a bounded [`PoolClient`]
//!   per backend, marking backends down on transport failure, probing
//!   them back, and replaying failed requests to the next backend on
//!   the ring — killing a backend mid-traffic loses zero accepted
//!   requests;
//! * **Elastic ring membership + warm-up replay** ([`crate::warmup`]) —
//!   [`Router::add_backend`]/[`Router::remove_backend`] resize a *live*
//!   ring under a versioned snapshot with the minimal-remap guarantee
//!   (only keys the joiner now owns change owner; removal drains
//!   in-flight requests first), and a joining backend bulk-fetches the
//!   cache entries for keys it now owns from the previous owners over
//!   the wire (`warmup-request`/`warmup-batch` frames, chunked under the
//!   frame cap, each entry integrity-checked by re-digest at import) —
//!   so a scale-out event starts warm instead of recompiling the
//!   working set.
//!
//! Cached results are **byte-deterministic**: wall times are stripped
//! from the artifact (they live in the response metadata instead), so a
//! cache hit — or a singleflight join — returns bytes identical to the
//! cold miss, and N threads compiling the same request all serialize the
//! same artifact.
//!
//! ```
//! use qft_serve::{CompileRequest, CompileService};
//!
//! let service = CompileService::new();
//! let req = CompileRequest::new("heavyhex", "heavyhex:2");
//! let cold = service.compile(&req).unwrap();
//! let warm = service.compile(&req).unwrap();
//! assert!(!cold.cached && warm.cached);
//! assert_eq!(
//!     serde_json::to_string(&cold.result).unwrap(),
//!     serde_json::to_string(&warm.result).unwrap(),
//! );
//! assert!(service.stats().hit_rate() > 0.0);
//! ```

#![warn(missing_docs)]

mod cache;
pub mod client;
pub mod digest;
mod flight;
mod metrics;
pub mod pool;
pub mod proto;
mod queue;
pub mod router;
pub mod server;
pub mod service;
pub mod types;
pub mod warmup;

pub use client::{ClientConfig, ClientError, NetClient, NetEvent, RetryPolicy};
pub use pool::PoolClient;
pub use router::{BackendState, Routed, Router, RouterConfig};
pub use server::{DrainSummary, NetServer, NetStats, ServerConfig};
pub use service::{
    Backpressure, CompileService, ServiceBuilder, StreamSession, Ticket, DEFAULT_CACHE_CAPACITY,
    DEFAULT_QUEUE_CAPACITY,
};
pub use types::{BackendStats, CompileRequest, CompileResponse, ServeError, ServeStats};
pub use warmup::{DonorOutcome, OwnedPredicate, WarmupEntry, WarmupImport, WarmupReport};

use qft_core::Registry;
use std::sync::OnceLock;

/// The process-wide shared compiler registry: the paper's four analytical
/// mappers plus the three baselines, built once behind a `OnceLock` and
/// shared by every service, thread, and caller for the life of the
/// process. `qft_kernels::registry()` delegates here, so the facade crate
/// and the service always agree on the instance.
pub fn shared_registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut r = Registry::with_core();
        qft_baselines::register_baselines(&mut r);
        r
    })
}
