//! A connection pool over one backend address.
//!
//! [`NetClient`] is deliberately a single blocking socket, which makes a
//! front-tier router's problem obvious: while one request waits on its
//! response read, every other request to the same backend would queue
//! behind that socket. [`PoolClient`] multiplexes a *set* of
//! `NetClient`s to one address so concurrent requests each get their own
//! connection — one blocked read never starves the others — while
//! bounding how many sockets one backend is asked to carry:
//!
//! * **checkout/checkin** — a request pops an idle connection or dials a
//!   new one; at most [`PoolClient::capacity`] connections are checked
//!   out at once, and further checkouts block until one is returned
//!   (the same discipline a backend's admission queue applies to work,
//!   applied here to sockets);
//! * **health-aware recycling** — a connection that answered cleanly
//!   (including server-side request errors and overload sheds, which
//!   leave the stream perfectly framed) goes back to the idle set; a
//!   connection that failed at the transport or framing layer is
//!   discarded, never handed to the next caller;
//! * **probing** — [`PoolClient::probe`] dials a *fresh* connection and
//!   completes a stats round-trip, which is the router's liveness check:
//!   it proves accept loop, framing, and service are all answering, not
//!   merely that the TCP handshake completed.

use crate::client::{ClientConfig, ClientError, NetClient};
use crate::types::{BackendStats, CompileRequest, CompileResponse};
use std::net::SocketAddr;
use std::sync::{Condvar, Mutex};

#[derive(Debug, Default)]
struct PoolState {
    /// Connections not currently checked out, newest last (LIFO reuse
    /// keeps the working set warm and lets excess sockets idle out of
    /// rotation).
    idle: Vec<NetClient>,
    /// Connections currently checked out.
    active: usize,
}

/// A bounded pool of [`NetClient`]s to one backend address. See the
/// module docs for the discipline; [`PoolClient::request`] is the
/// checkout → call → recycle cycle pre-assembled.
#[derive(Debug)]
pub struct PoolClient {
    addr: SocketAddr,
    config: ClientConfig,
    cap: usize,
    state: Mutex<PoolState>,
    freed: Condvar,
}

impl PoolClient {
    /// A pool for `addr`, dialing lazily with `config`, with at most
    /// `cap` connections checked out at once (`cap` is clamped to ≥ 1 —
    /// a pool that can never lend a connection is not a pool).
    pub fn new(addr: SocketAddr, config: ClientConfig, cap: usize) -> PoolClient {
        PoolClient {
            addr,
            config,
            cap: cap.max(1),
            state: Mutex::new(PoolState::default()),
            freed: Condvar::new(),
        }
    }

    /// The backend address this pool dials.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The checkout bound: the most connections this pool will have
    /// lent out at any moment.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Idle (pooled, reusable) connections right now.
    pub fn idle_connections(&self) -> usize {
        self.state.lock().expect("pool mutex").idle.len()
    }

    /// Borrows a connection: an idle one if available, a freshly dialed
    /// one if under capacity, otherwise blocks until a checkout returns.
    /// Every successful checkout must be paired with
    /// [`PoolClient::checkin`] or [`PoolClient::discard`].
    pub fn checkout(&self) -> Result<NetClient, ClientError> {
        let mut state = self.state.lock().expect("pool mutex");
        loop {
            if let Some(client) = state.idle.pop() {
                state.active += 1;
                return Ok(client);
            }
            if state.active < self.cap {
                state.active += 1;
                drop(state);
                // Dial outside the lock: a slow connect must not block
                // checkins (or other checkouts of idle connections).
                return match NetClient::connect_with(self.addr, self.config.clone()) {
                    Ok(client) => Ok(client),
                    Err(e) => {
                        self.state.lock().expect("pool mutex").active -= 1;
                        self.freed.notify_one();
                        Err(e)
                    }
                };
            }
            state = self.freed.wait(state).expect("pool mutex");
        }
    }

    /// Returns a healthy connection to the idle set for reuse.
    pub fn checkin(&self, client: NetClient) {
        let mut state = self.state.lock().expect("pool mutex");
        state.active -= 1;
        if state.idle.len() < self.cap {
            state.idle.push(client);
        }
        drop(state);
        self.freed.notify_one();
    }

    /// Releases a checkout *without* recycling the connection — the
    /// caller saw a transport or framing failure, so the socket's state
    /// is unknown and nobody else should inherit it.
    ///
    /// Accounting audit: every path that increments `active` pairs with
    /// exactly one decrement — [`PoolClient::checkin`], this method, or
    /// the connect-error arm inside [`PoolClient::checkout`] (which also
    /// notifies, so a waiter blocked at the cap is not stranded by a
    /// failed dial). A request cycle that discards therefore frees its
    /// permit just like one that checks in; repeated transport failures
    /// can never leak permits until the pool wedges at `cap`. Pinned by
    /// the `discard_path_never_leaks_checkout_permits` regression test.
    pub fn discard(&self) {
        self.state.lock().expect("pool mutex").active -= 1;
        self.freed.notify_one();
    }

    /// Drops every idle connection. The router calls this when it marks
    /// the backend down: sockets pooled before the failure are presumed
    /// dead, and a recovered backend deserves fresh dials, not leftovers.
    pub fn clear_idle(&self) {
        self.state.lock().expect("pool mutex").idle.clear();
    }

    /// Checkout → [`NetClient::request`] → recycle. Server-level answers
    /// (success, request errors, overload sheds) leave the stream framed
    /// and recycle the connection; transport/framing failures and server
    /// goodbyes discard it.
    pub fn request(&self, req: &CompileRequest) -> Result<CompileResponse, ClientError> {
        let mut client = self.checkout()?;
        let outcome = client.request(req);
        match &outcome {
            Ok(_) | Err(ClientError::Server(_)) | Err(ClientError::Overloaded { .. }) => {
                self.checkin(client)
            }
            Err(ClientError::Io { .. })
            | Err(ClientError::Proto(_))
            | Err(ClientError::Closed { .. }) => self.discard(),
        }
        outcome
    }

    /// Checkout → [`NetClient::backend_stats`] → recycle, same
    /// discipline as [`PoolClient::request`].
    pub fn backend_stats(&self) -> Result<BackendStats, ClientError> {
        let mut client = self.checkout()?;
        let outcome = client.backend_stats();
        match &outcome {
            Ok(_) => self.checkin(client),
            Err(_) => self.discard(),
        }
        outcome
    }

    /// The liveness probe: dial a *fresh* connection (pooled idle
    /// sockets prove nothing about a backend that restarted) and
    /// complete a stats round-trip. On success the new connection joins
    /// the idle set — a recovering backend's first real request reuses
    /// it instead of dialing again.
    pub fn probe(&self) -> Result<BackendStats, ClientError> {
        let mut client = NetClient::connect_with(self.addr, self.config.clone())?;
        let tagged = client.backend_stats()?;
        let mut state = self.state.lock().expect("pool mutex");
        if state.idle.len() < self.cap {
            state.idle.push(client);
            drop(state);
        } else {
            drop(state);
            let _ = client.goodbye();
        }
        Ok(tagged)
    }
}
