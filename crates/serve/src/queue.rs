//! The bounded submission queue feeding the persistent worker pool.
//!
//! A deliberately boring MPMC queue — `Mutex<VecDeque>` plus two
//! condvars — because the jobs it carries are compiles that cost
//! microseconds to milliseconds each: queue overhead is noise, but the
//! *bound* is load-bearing. A full queue is the service's backpressure
//! signal; whether a submitter blocks on `not_full` or is shed with a
//! descriptive error is the service's [`crate::Backpressure`] policy,
//! expressed here as the choice between [`BoundedQueue::push`] and
//! [`BoundedQueue::try_push`].

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a [`BoundedQueue::try_push`] did not enqueue.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum PushError<T> {
    /// The queue is at capacity (shed policy: reject, don't wait).
    Full(T),
    /// The queue is closed (the service is shutting down).
    Closed(T),
}

#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer/multi-consumer FIFO.
#[derive(Debug)]
pub(crate) struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity >= 1` items.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items queued right now (the stats queue-depth gauge).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue mutex").items.len()
    }

    /// Blocking enqueue: waits for space while the queue is full
    /// (backpressure propagates to the submitter's thread). Returns the
    /// item back if the queue closed while waiting.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("queue mutex");
        while state.items.len() >= self.capacity && !state.closed {
            state = self.not_full.wait(state).expect("queue condvar");
        }
        if state.closed {
            return Err(item);
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Non-blocking enqueue: a full queue sheds immediately.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().expect("queue mutex");
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking dequeue: waits for an item; `None` once the queue is
    /// closed *and* drained (workers exit on `None`).
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue mutex");
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue condvar");
        }
    }

    /// Closes the queue: pending items still drain, new pushes fail, and
    /// every blocked waiter wakes.
    pub fn close(&self) {
        self.state.lock().expect("queue mutex").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn try_push_sheds_at_capacity_and_recovers_after_pop() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3), Ok(()));
        q.close();
        assert_eq!(q.try_push(4), Err(PushError::Closed(4)));
        // Close drains before ending the consumers.
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocking_push_waits_for_space_instead_of_shedding() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(1).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push(2).is_ok());
        // The producer is blocked on a full queue; popping frees it.
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(q.pop(), Some(1));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn close_wakes_blocked_producers_with_their_item() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(1).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push(2));
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(producer.join().unwrap(), Err(2));
    }
}
