//! Bidirectional logical↔physical qubit maps.

use crate::gate::{LogicalQubit, PhysicalQubit};
use serde::{Deserialize, Serialize};

/// A bijection between logical qubits and (a subset of) physical qubits.
///
/// `phys_of[l]` is where logical qubit `l` currently sits; `log_of[p]` is the
/// logical qubit occupying physical location `p` (or `None` for a spare
/// physical qubit when the chip is larger than the program).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Layout {
    phys_of: Vec<PhysicalQubit>,
    log_of: Vec<Option<LogicalQubit>>,
}

impl Layout {
    /// The identity layout on `n` qubits mapping `q_i → Q_i`, on a device
    /// with `n_phys ≥ n` physical qubits.
    pub fn identity(n: usize, n_phys: usize) -> Self {
        assert!(n_phys >= n, "device smaller than program ({n_phys} < {n})");
        let phys_of = (0..n as u32).map(PhysicalQubit).collect();
        let mut log_of = vec![None; n_phys];
        for (i, slot) in log_of.iter_mut().enumerate().take(n) {
            *slot = Some(LogicalQubit(i as u32));
        }
        Layout { phys_of, log_of }
    }

    /// Builds a layout from an explicit `logical → physical` assignment.
    ///
    /// # Panics
    /// Panics if the assignment is not injective or indexes past `n_phys`.
    pub fn from_assignment(phys_of: Vec<PhysicalQubit>, n_phys: usize) -> Self {
        let mut log_of: Vec<Option<LogicalQubit>> = vec![None; n_phys];
        for (l, &p) in phys_of.iter().enumerate() {
            let slot = &mut log_of[p.index()];
            assert!(slot.is_none(), "two logical qubits mapped to {p}");
            *slot = Some(LogicalQubit(l as u32));
        }
        Layout { phys_of, log_of }
    }

    /// Number of logical qubits.
    #[inline]
    pub fn n_logical(&self) -> usize {
        self.phys_of.len()
    }

    /// Number of physical qubits on the device.
    #[inline]
    pub fn n_physical(&self) -> usize {
        self.log_of.len()
    }

    /// Where logical qubit `l` currently sits.
    #[inline]
    pub fn phys(&self, l: LogicalQubit) -> PhysicalQubit {
        self.phys_of[l.index()]
    }

    /// Which logical qubit occupies physical location `p`, if any.
    #[inline]
    pub fn logical(&self, p: PhysicalQubit) -> Option<LogicalQubit> {
        self.log_of[p.index()]
    }

    /// Applies a SWAP between two physical locations, updating both maps.
    ///
    /// Either location may be a spare (unoccupied) qubit.
    pub fn swap_phys(&mut self, p1: PhysicalQubit, p2: PhysicalQubit) {
        let l1 = self.log_of[p1.index()];
        let l2 = self.log_of[p2.index()];
        self.log_of[p1.index()] = l2;
        self.log_of[p2.index()] = l1;
        if let Some(l) = l1 {
            self.phys_of[l.index()] = p2;
        }
        if let Some(l) = l2 {
            self.phys_of[l.index()] = p1;
        }
    }

    /// The assignment vector `logical → physical` (a copy).
    pub fn assignment(&self) -> Vec<PhysicalQubit> {
        self.phys_of.clone()
    }

    /// Internal consistency check: the two directions agree.
    pub fn is_consistent(&self) -> bool {
        self.phys_of
            .iter()
            .enumerate()
            .all(|(l, &p)| self.log_of[p.index()] == Some(LogicalQubit(l as u32)))
            && self
                .log_of
                .iter()
                .enumerate()
                .all(|(p, lo)| lo.is_none_or(|l| self.phys_of[l.index()].index() == p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_roundtrip() {
        let lay = Layout::identity(4, 6);
        for i in 0..4u32 {
            assert_eq!(lay.phys(LogicalQubit(i)), PhysicalQubit(i));
            assert_eq!(lay.logical(PhysicalQubit(i)), Some(LogicalQubit(i)));
        }
        assert_eq!(lay.logical(PhysicalQubit(5)), None);
        assert!(lay.is_consistent());
    }

    #[test]
    fn swap_updates_both_directions() {
        let mut lay = Layout::identity(3, 3);
        lay.swap_phys(PhysicalQubit(0), PhysicalQubit(2));
        assert_eq!(lay.phys(LogicalQubit(0)), PhysicalQubit(2));
        assert_eq!(lay.phys(LogicalQubit(2)), PhysicalQubit(0));
        assert_eq!(lay.logical(PhysicalQubit(0)), Some(LogicalQubit(2)));
        assert!(lay.is_consistent());
    }

    #[test]
    fn swap_with_spare_slot() {
        let mut lay = Layout::identity(2, 3);
        lay.swap_phys(PhysicalQubit(1), PhysicalQubit(2));
        assert_eq!(lay.phys(LogicalQubit(1)), PhysicalQubit(2));
        assert_eq!(lay.logical(PhysicalQubit(1)), None);
        assert!(lay.is_consistent());
    }

    #[test]
    #[should_panic(expected = "two logical qubits")]
    fn non_injective_assignment_panics() {
        Layout::from_assignment(vec![PhysicalQubit(0), PhysicalQubit(0)], 2);
    }

    #[test]
    fn double_swap_is_identity() {
        let mut lay = Layout::identity(5, 5);
        lay.swap_phys(PhysicalQubit(1), PhysicalQubit(3));
        lay.swap_phys(PhysicalQubit(1), PhysicalQubit(3));
        assert_eq!(lay, Layout::identity(5, 5));
    }
}
