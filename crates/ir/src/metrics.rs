//! Compilation-quality metrics: the columns of every table and figure.

use crate::circuit::MappedCircuit;
use crate::gate::GateKind;
use serde::{Deserialize, Serialize};

/// Summary of a mapped circuit's cost, in the units the paper reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metrics {
    /// Number of logical qubits.
    pub n: usize,
    /// Uniform-latency depth (cycles; the NISQ "Depth" column).
    pub depth: u64,
    /// Depth counting only two-qubit layers (the complexity-formula cycles).
    pub two_qubit_depth: u64,
    /// Inserted SWAP gates (the "# SWAP" column).
    pub swaps: usize,
    /// CPHASE count (must equal `n(n-1)/2` for a valid QFT).
    pub cphases: usize,
    /// Hadamard count (must equal `n`).
    pub hadamards: usize,
    /// All ops.
    pub total_ops: usize,
}

impl Metrics {
    /// Computes metrics with uniform latencies (NISQ backends).
    pub fn of(mc: &MappedCircuit) -> Metrics {
        Metrics {
            n: mc.n_logical(),
            depth: mc.depth_uniform(),
            two_qubit_depth: mc.two_qubit_depth(),
            swaps: mc.swap_count(),
            cphases: mc.cphase_count(),
            hadamards: mc.ops().iter().filter(|o| o.kind == GateKind::H).count(),
            total_ops: mc.ops().len(),
        }
    }

    /// Computes metrics with a per-op latency function (FT backends; the
    /// depth field uses the weighted schedule).
    pub fn of_weighted(
        mc: &MappedCircuit,
        latency: impl Fn(&crate::circuit::PhysOp) -> u64,
    ) -> Metrics {
        let mut m = Metrics::of(mc);
        m.depth = mc.depth_with(latency);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::MappedCircuitBuilder;
    use crate::gate::{GateKind, PhysicalQubit};
    use crate::layout::Layout;

    #[test]
    fn metrics_count_kinds() {
        let mut b = MappedCircuitBuilder::new(Layout::identity(2, 2));
        b.push_1q_phys(GateKind::H, PhysicalQubit(0));
        b.push_2q_phys(
            GateKind::Cphase { k: 2 },
            PhysicalQubit(0),
            PhysicalQubit(1),
        );
        b.push_swap_phys(PhysicalQubit(0), PhysicalQubit(1));
        let m = Metrics::of(&b.finish());
        assert_eq!(m.swaps, 1);
        assert_eq!(m.cphases, 1);
        assert_eq!(m.hadamards, 1);
        assert_eq!(m.total_ops, 3);
        assert_eq!(m.depth, 3);
        assert_eq!(m.two_qubit_depth, 2);
    }
}
