//! Gate and qubit primitives shared by every layer of the stack.
//!
//! The paper's circuits are built from three gate families: Hadamard (`H`),
//! controlled-phase (`CPHASE`, written `R_k` in the textbook QFT), and `SWAP`
//! (plus `CNOT`, into which a `SWAP` decomposes on CNOT-only lattice-surgery
//! links). We keep the rotation order `k` of `R_k` exact (the angle is
//! `2π / 2^k`) instead of a floating-point angle so that circuit equality and
//! QASM export are exact.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A logical qubit index (`q_i` in the paper).
///
/// Logical qubits are the program's qubits; they move between physical
/// locations as SWAPs are inserted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LogicalQubit(pub u32);

/// A physical qubit index (`Q_i` in the paper): a fixed location on the chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PhysicalQubit(pub u32);

impl LogicalQubit {
    /// The index as a `usize`, for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl PhysicalQubit {
    /// The index as a `usize`, for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LogicalQubit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl fmt::Display for PhysicalQubit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}", self.0)
    }
}

/// The kind of a gate, with exact parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GateKind {
    /// Hadamard gate.
    H,
    /// Controlled-phase rotation `R_k`: `diag(1, 1, 1, e^{2πi/2^k})`.
    ///
    /// In the textbook QFT the gate between `q_i` (target) and `q_j`
    /// (control), `i < j`, is `R_{j-i+1}`. `CPHASE` is symmetric in its two
    /// operands (it is diagonal), so control/target distinction matters only
    /// for presentation.
    Cphase {
        /// Rotation order `k ≥ 1`; the phase angle is `2π / 2^k`.
        k: u32,
    },
    /// SWAP gate: exchanges the states of its two operands.
    Swap,
    /// The paper's *combined interaction*: a `CPHASE(R_k)` fused with the
    /// SWAP that immediately follows it on the same qubit pair, executed as
    /// one two-qubit interaction. `CPHASE` and `SWAP` on the same pair
    /// commute (`CPHASE` is diagonal and symmetric), so the fusion is exact
    /// regardless of which of the two came first in the unfused stream.
    /// Produced by the `merge-swap-cphase` peephole pass; never emitted by
    /// the construct stage of any compiler.
    CphaseSwap {
        /// Rotation order `k ≥ 1` of the fused `CPHASE`; angle `2π / 2^k`.
        k: u32,
    },
    /// Controlled-NOT, used when decomposing SWAPs on CNOT-only links.
    Cnot,
    /// Pauli-X, used in tests and examples.
    X,
    /// Z-axis rotation by `2π / 2^k`, used in tests.
    Rz {
        /// Rotation order; the phase angle is `2π / 2^k`.
        k: u32,
    },
}

impl GateKind {
    /// Number of qubits the gate acts on (1 or 2).
    #[inline]
    pub fn arity(self) -> usize {
        match self {
            GateKind::H | GateKind::X | GateKind::Rz { .. } => 1,
            GateKind::Cphase { .. }
            | GateKind::Swap
            | GateKind::CphaseSwap { .. }
            | GateKind::Cnot => 2,
        }
    }

    /// Whether the gate is diagonal in the computational basis.
    ///
    /// Diagonal gates mutually commute — this is the algebraic fact behind
    /// the paper's Key Insight 1 (§3.1): any two `CPHASE` gates commute, even
    /// when they share a qubit, so Type I dependences can be dropped.
    #[inline]
    pub fn is_diagonal(self) -> bool {
        matches!(self, GateKind::Cphase { .. } | GateKind::Rz { .. })
    }

    /// Whether the operands can be exchanged without changing the unitary.
    #[inline]
    pub fn is_symmetric(self) -> bool {
        matches!(
            self,
            GateKind::Cphase { .. } | GateKind::Swap | GateKind::CphaseSwap { .. }
        )
    }

    /// Whether executing this gate exchanges the logical occupants of its
    /// two physical operands — i.e. whether layout replay must apply a swap
    /// after it. True for `SWAP` and the fused `CPHASE`+`SWAP` interaction.
    #[inline]
    pub fn swaps_operands(self) -> bool {
        matches!(self, GateKind::Swap | GateKind::CphaseSwap { .. })
    }

    /// The rotation order of the `CPHASE` this gate performs, if any
    /// (`Cphase` and the fused `CphaseSwap`).
    #[inline]
    pub fn cphase_order(self) -> Option<u32> {
        match self {
            GateKind::Cphase { k } | GateKind::CphaseSwap { k } => Some(k),
            _ => None,
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateKind::H => write!(f, "H"),
            GateKind::Cphase { k } => write!(f, "CP(pi/2^{})", k.saturating_sub(1)),
            GateKind::Swap => write!(f, "SWAP"),
            GateKind::CphaseSwap { k } => write!(f, "CPSWAP(pi/2^{})", k.saturating_sub(1)),
            GateKind::Cnot => write!(f, "CNOT"),
            GateKind::X => write!(f, "X"),
            GateKind::Rz { k } => write!(f, "RZ(2pi/2^{k})"),
        }
    }
}

/// A gate applied to logical qubits (a *logical circuit* element).
///
/// For two-qubit gates `a` is the first operand (target for `CPHASE` in the
/// textbook drawing, control for `CNOT`) and `b` the second.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Gate {
    /// What the gate does.
    pub kind: GateKind,
    /// First operand.
    pub a: LogicalQubit,
    /// Second operand for two-qubit gates.
    pub b: Option<LogicalQubit>,
}

impl Gate {
    /// Single-qubit gate constructor.
    #[inline]
    pub fn one(kind: GateKind, a: LogicalQubit) -> Self {
        debug_assert_eq!(kind.arity(), 1);
        Gate { kind, a, b: None }
    }

    /// Two-qubit gate constructor.
    #[inline]
    pub fn two(kind: GateKind, a: LogicalQubit, b: LogicalQubit) -> Self {
        debug_assert_eq!(kind.arity(), 2);
        debug_assert_ne!(a, b, "two-qubit gate with identical operands");
        Gate {
            kind,
            a,
            b: Some(b),
        }
    }

    /// Hadamard on `q`.
    #[inline]
    pub fn h(q: u32) -> Self {
        Gate::one(GateKind::H, LogicalQubit(q))
    }

    /// `R_k`-controlled phase between `target` and `control`.
    #[inline]
    pub fn cphase(k: u32, target: u32, control: u32) -> Self {
        Gate::two(
            GateKind::Cphase { k },
            LogicalQubit(target),
            LogicalQubit(control),
        )
    }

    /// SWAP between `a` and `b`.
    #[inline]
    pub fn swap(a: u32, b: u32) -> Self {
        Gate::two(GateKind::Swap, LogicalQubit(a), LogicalQubit(b))
    }

    /// `RZ` of rotation order `k` on `q`.
    #[inline]
    pub fn rz(k: u32, q: u32) -> Self {
        Gate::one(GateKind::Rz { k }, LogicalQubit(q))
    }

    /// CNOT with control `c` and target `t`.
    #[inline]
    pub fn cnot(c: u32, t: u32) -> Self {
        Gate::two(GateKind::Cnot, LogicalQubit(c), LogicalQubit(t))
    }

    /// The qubits this gate touches, in operand order.
    #[inline]
    pub fn qubits(&self) -> impl Iterator<Item = LogicalQubit> + '_ {
        std::iter::once(self.a).chain(self.b)
    }

    /// True if the gate acts on `q`.
    #[inline]
    pub fn touches(&self, q: LogicalQubit) -> bool {
        self.a == q || self.b == Some(q)
    }

    /// True if this gate shares at least one qubit with `other`.
    pub fn overlaps(&self, other: &Gate) -> bool {
        other.qubits().any(|q| self.touches(q))
    }

    /// Whether this gate commutes with `other`.
    ///
    /// Disjoint gates always commute. Overlapping gates commute iff both are
    /// diagonal (`CPHASE`/`RZ`) — the relaxation of §3.1.
    pub fn commutes_with(&self, other: &Gate) -> bool {
        if !self.overlaps(other) {
            return true;
        }
        self.kind.is_diagonal() && other.kind.is_diagonal()
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.b {
            Some(b) => write!(f, "{}({}, {})", self.kind, self.a, b),
            None => write!(f, "{}({})", self.kind, self.a),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_constructor() {
        assert_eq!(GateKind::H.arity(), 1);
        assert_eq!(GateKind::Cphase { k: 2 }.arity(), 2);
        assert_eq!(GateKind::Swap.arity(), 2);
        assert_eq!(GateKind::Cnot.arity(), 2);
    }

    #[test]
    fn diagonal_classification() {
        assert!(GateKind::Cphase { k: 3 }.is_diagonal());
        assert!(GateKind::Rz { k: 1 }.is_diagonal());
        assert!(!GateKind::H.is_diagonal());
        assert!(!GateKind::Swap.is_diagonal());
        assert!(!GateKind::Cnot.is_diagonal());
    }

    #[test]
    fn cphase_gates_sharing_a_qubit_commute() {
        let g1 = Gate::cphase(2, 0, 1);
        let g2 = Gate::cphase(3, 0, 2);
        assert!(g1.commutes_with(&g2));
        assert!(g2.commutes_with(&g1));
    }

    #[test]
    fn h_does_not_commute_with_overlapping_cphase() {
        let h = Gate::h(1);
        let cp = Gate::cphase(2, 0, 1);
        assert!(!h.commutes_with(&cp));
        // ... but it commutes with a disjoint CPHASE.
        let cp2 = Gate::cphase(2, 2, 3);
        assert!(h.commutes_with(&cp2));
    }

    #[test]
    fn overlap_detection() {
        let g1 = Gate::swap(0, 1);
        let g2 = Gate::swap(1, 2);
        let g3 = Gate::swap(2, 3);
        assert!(g1.overlaps(&g2));
        assert!(!g1.overlaps(&g3));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Gate::h(3).to_string(), "H(q3)");
        assert_eq!(Gate::swap(0, 1).to_string(), "SWAP(q0, q1)");
        assert_eq!(Gate::cphase(2, 0, 1).to_string(), "CP(pi/2^1)(q0, q1)");
    }
}
