//! Logical QFT circuit builders and the k-partition scheme of §3.2.

use crate::circuit::Circuit;
use crate::gate::{Gate, GateKind, LogicalQubit};
use std::fmt;
use std::ops::Range;

/// Rotation order of the textbook QFT `CPHASE` between qubits `i` and `j`:
/// the gate is `R_{|j-i|+1}` (angle `2π / 2^{|j-i|+1}` = `π / 2^{|j-i|}`).
#[inline]
pub fn rotation_order(i: u32, j: u32) -> u32 {
    i.abs_diff(j) + 1
}

/// The textbook QFT circuit on `n` qubits, in strict program order
/// (Fig. 2(a) of the paper): `H(q_i)` followed by `CPHASE`s with controls
/// `q_{i+1} … q_{n-1}`, for `i = 0 … n-1`.
pub fn qft_circuit(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for i in 0..n as u32 {
        c.push(Gate::h(i));
        for j in (i + 1)..n as u32 {
            c.push(Gate::cphase(rotation_order(i, j), i, j));
        }
    }
    c
}

/// The approximate QFT (AQFT) circuit on `n` qubits: the textbook circuit
/// of [`qft_circuit`] with every `R_k` rotation of order `k > degree`
/// dropped (Coppersmith's truncation). `degree >= n` keeps every rotation
/// (the exact QFT); `degree = 1` keeps only the Hadamards. This is the
/// semantic reference that both the search compilers' logical input and
/// the `aqft-truncate` pass over mapped circuits must agree with.
///
/// # Panics
/// Panics on `degree = 0`: a degree-0 truncation would also drop the
/// Hadamard "rotations" and is rejected at the pipeline layer with a
/// descriptive error before reaching this builder.
pub fn aqft_circuit(n: usize, degree: u32) -> Circuit {
    assert!(degree >= 1, "AQFT degree must be >= 1, got 0");
    let mut c = Circuit::new(n);
    for i in 0..n as u32 {
        c.push(Gate::h(i));
        for j in (i + 1)..n as u32 {
            let k = rotation_order(i, j);
            if k <= degree {
                c.push(Gate::cphase(k, i, j));
            }
        }
    }
    c
}

/// The phase angle of the AQFT basis matrix element `⟨y|AQFT_d|x⟩` on `n`
/// qubits (the amplitude itself is `2^{-n/2} · e^{iθ}` — every basis
/// matrix element of the truncated transform has the same magnitude).
///
/// The closed form falls out of the circuit's Type II structure: each
/// qubit `i` sees exactly one `H`, with only diagonal rotations after it.
/// Summing over computational-basis paths, qubit `i` enters its `H` still
/// carrying the input bit `x_i` (earlier `CPHASE`s are diagonal) and
/// leaves it pinned to the output bit `y_i` (later `CPHASE`s are
/// diagonal), so each `H` contributes `2^{-1/2} · (−1)^{x_i y_i}`, and the
/// surviving `CPHASE(i, j)` of order `k = j−i+1 ≤ d` fires on the post-H
/// bit `y_i` and the pre-H bit `x_j`:
///
/// `θ = π · |x ∧ y|  +  Σ_{i<j, j−i+1≤d}  y_i · x_j · 2π/2^{j−i+1}`
///
/// This gives the sparse equivalence tier engine-independent reference
/// amplitudes in `O(n·d)` per `(x, y)` pair — no `2^n` reference state.
/// `degree ≥ n` is the exact QFT. Requires `n ≤ 63` (u64 basis indices)
/// and `degree ≥ 1` (matching [`aqft_circuit`]).
pub fn aqft_basis_amplitude_angle(n: usize, degree: u32, x: u64, y: u64) -> f64 {
    assert!(degree >= 1, "AQFT degree must be >= 1, got 0");
    assert!(n <= 63, "basis indices are u64: n must be <= 63");
    debug_assert!(n == 63 || (x < (1u64 << n) && y < (1u64 << n)));
    let mut theta = std::f64::consts::PI * (x & y).count_ones() as f64;
    for i in 0..n {
        if y >> i & 1 == 0 {
            continue;
        }
        for j in (i + 1)..n {
            let k = (j - i + 1) as u32;
            if k > degree {
                break; // k grows with j: no further pair survives
            }
            if x >> j & 1 == 1 {
                theta += 2.0 * std::f64::consts::PI * 0.5f64.powi(k as i32);
            }
        }
    }
    theta
}

/// Number of CPHASE gates the degree-`degree` AQFT on `n` qubits keeps:
/// the pairs `(i, j)` with `|i - j| + 1 <= degree`.
pub fn aqft_pair_count(n: usize, degree: u32) -> usize {
    (1..n)
        .filter(|&dist| (dist as u32) < degree)
        .map(|dist| n - dist)
        .sum()
}

/// A recursive partition of a contiguous qubit range, mirroring the
/// `range_list` argument of the paper's `QFT-IA` pseudo-code (Fig. 8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Partition {
    /// No further subdivision: run the traditional QFT on this range.
    Leaf(Range<u32>),
    /// Subdivide into the given children (which must tile the range in
    /// ascending order).
    Node(Vec<Partition>),
}

impl Partition {
    /// An even `k`-way split of `0..n` (last part takes the remainder).
    pub fn even(n: u32, k: u32) -> Partition {
        assert!(k >= 1 && n >= k, "cannot split {n} qubits into {k} parts");
        let base = n / k;
        let mut parts = Vec::with_capacity(k as usize);
        let mut start = 0;
        for i in 0..k {
            let end = if i + 1 == k { n } else { start + base };
            parts.push(Partition::Leaf(start..end));
            start = end;
        }
        Partition::Node(parts)
    }

    /// The full range covered by this partition.
    pub fn range(&self) -> Range<u32> {
        match self {
            Partition::Leaf(r) => r.clone(),
            Partition::Node(children) => {
                let start = children
                    .first()
                    .expect("empty partition node")
                    .range()
                    .start;
                let end = children.last().unwrap().range().end;
                start..end
            }
        }
    }

    /// Validates that children tile the parent contiguously and ascending.
    pub fn validate(&self) -> Result<(), String> {
        if let Partition::Node(children) = self {
            if children.is_empty() {
                return Err("empty partition node".into());
            }
            let mut cursor = children[0].range().start;
            for c in children {
                let r = c.range();
                if r.start != cursor {
                    return Err(format!("gap or overlap at qubit {}", r.start));
                }
                if r.is_empty() {
                    return Err(format!("empty sub-range at {}", r.start));
                }
                cursor = r.end;
                c.validate()?;
            }
        }
        Ok(())
    }
}

/// `QFT-IE(range1, range2)`: all `CPHASE`s between two disjoint ranges, in
/// row-major order (Fig. 8). These gates mutually commute (§3.3), so any
/// reordering of this block is legal.
pub fn qft_ie(c: &mut Circuit, r1: Range<u32>, r2: Range<u32>) {
    for i in r1 {
        for j in r2.clone() {
            c.push(Gate::cphase(rotation_order(i, j), i, j));
        }
    }
}

/// `QFT-traditional(range)`: the textbook QFT restricted to one range.
pub fn qft_traditional(c: &mut Circuit, r: Range<u32>) {
    for i in r.clone() {
        c.push(Gate::h(i));
        for j in (i + 1)..r.end {
            c.push(Gate::cphase(rotation_order(i, j), i, j));
        }
    }
}

/// `QFT-IA(range, range_list)` (Fig. 8): the k-partition QFT. For each child
/// in order: run its intra-QFT, then its inter-QFT with every later child.
///
/// The produced circuit contains the same gate multiset as [`qft_circuit`]
/// but in the partition order; §3.2 proves this order is Type-II-valid.
pub fn qft_partitioned(p: &Partition) -> Circuit {
    p.validate().expect("invalid partition");
    let r = p.range();
    assert_eq!(r.start, 0, "partition must start at qubit 0");
    let mut c = Circuit::new(r.end as usize);
    emit_ia(&mut c, p);
    c
}

fn emit_ia(c: &mut Circuit, p: &Partition) {
    match p {
        Partition::Leaf(r) => qft_traditional(c, r.clone()),
        Partition::Node(children) => {
            for (idx, child) in children.iter().enumerate() {
                emit_ia(c, child);
                for later in &children[idx + 1..] {
                    qft_ie(c, child.range(), later.range());
                }
            }
        }
    }
}

/// Why a gate sequence fails to be a valid QFT realization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QftOrderError {
    /// A qubit has no H, or more than one.
    HadamardCount {
        /// The offending qubit.
        qubit: u32,
        /// How many H gates it received.
        count: usize,
    },
    /// A pair is missing its CPHASE or has duplicates.
    PairCount {
        /// The offending unordered pair (i < j).
        pair: (u32, u32),
        /// How many CPHASEs it received.
        count: usize,
    },
    /// The CPHASE rotation order is wrong for the pair.
    WrongAngle {
        /// The pair (i < j).
        pair: (u32, u32),
        /// The `k` found.
        found: u32,
        /// The `k` required (`j - i + 1`).
        expected: u32,
    },
    /// Type II violated: CPHASE(i,j) not strictly between H(i) and H(j).
    TypeII {
        /// The pair (i < j).
        pair: (u32, u32),
    },
    /// A gate kind that has no place in a logical QFT sequence.
    ForeignGate {
        /// Index in the sequence.
        position: usize,
    },
}

impl fmt::Display for QftOrderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QftOrderError::HadamardCount { qubit, count } => {
                write!(f, "q{qubit} has {count} H gates (expected 1)")
            }
            QftOrderError::PairCount {
                pair: (i, j),
                count,
            } => {
                write!(f, "pair (q{i}, q{j}) has {count} CPHASEs (expected 1)")
            }
            QftOrderError::WrongAngle {
                pair: (i, j),
                found,
                expected,
            } => {
                write!(
                    f,
                    "pair (q{i}, q{j}) uses R_{found} (expected R_{expected})"
                )
            }
            QftOrderError::TypeII { pair: (i, j) } => {
                write!(f, "CPHASE(q{i}, q{j}) violates H(q{i}) < CP < H(q{j})")
            }
            QftOrderError::ForeignGate { position } => {
                write!(f, "gate #{position} is not H/CPHASE")
            }
        }
    }
}

impl std::error::Error for QftOrderError {}

/// Checks that `gates` (H and CPHASE only, on `n` qubits) is a valid
/// realization of the QFT interaction pattern:
///
/// 1. exactly one `H` per qubit;
/// 2. exactly one `CPHASE` per unordered pair, with rotation order
///    `R_{j-i+1}`;
/// 3. Type II: for `i < j`, `H(i)` precedes `CPHASE(i,j)` which precedes
///    `H(j)`.
///
/// This is the semantic contract every compiled QFT must satisfy (it is
/// sufficient for unitary equivalence because all CPHASEs commute — see the
/// state-vector cross-check in `qft-sim`).
pub fn check_qft_order<I>(gates: I, n: usize) -> Result<(), QftOrderError>
where
    I: IntoIterator<Item = Gate>,
{
    let mut h_pos: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut pair_pos: Vec<Vec<usize>> = vec![Vec::new(); n * n];
    let mut pair_k: Vec<u32> = vec![0; n * n];
    let mut count = 0usize;
    for (t, g) in gates.into_iter().enumerate() {
        count += 1;
        match g.kind {
            GateKind::H => h_pos[g.a.index()].push(t),
            GateKind::Cphase { k } => {
                let (a, b) = (g.a, g.b.expect("2-qubit cphase"));
                let (i, j) = if a < b { (a, b) } else { (b, a) };
                let slot = i.index() * n + j.index();
                pair_pos[slot].push(t);
                pair_k[slot] = k;
            }
            _ => return Err(QftOrderError::ForeignGate { position: t }),
        }
    }
    let _ = count;
    for (q, positions) in h_pos.iter().enumerate() {
        if positions.len() != 1 {
            return Err(QftOrderError::HadamardCount {
                qubit: q as u32,
                count: positions.len(),
            });
        }
    }
    for i in 0..n as u32 {
        for j in (i + 1)..n as u32 {
            let slot = i as usize * n + j as usize;
            if pair_pos[slot].len() != 1 {
                return Err(QftOrderError::PairCount {
                    pair: (i, j),
                    count: pair_pos[slot].len(),
                });
            }
            let expected = rotation_order(i, j);
            if pair_k[slot] != expected {
                return Err(QftOrderError::WrongAngle {
                    pair: (i, j),
                    found: pair_k[slot],
                    expected,
                });
            }
            let t = pair_pos[slot][0];
            if !(h_pos[i as usize][0] < t && t < h_pos[j as usize][0]) {
                return Err(QftOrderError::TypeII { pair: (i, j) });
            }
        }
    }
    Ok(())
}

/// Convenience: runs [`check_qft_order`] on a whole circuit.
pub fn check_qft_circuit(c: &Circuit) -> Result<(), QftOrderError> {
    check_qft_order(c.gates().iter().copied(), c.n_qubits())
}

/// Extracts the logical H/CPHASE sequence from per-op logical annotations,
/// dropping SWAPs. A fused [`GateKind::CphaseSwap`] contributes its CPHASE
/// (the swap half moves qubits but is identity on the logical state). Used
/// to check mapped circuits against the QFT contract.
pub fn logical_interactions<'a>(
    ops: impl IntoIterator<Item = &'a crate::circuit::PhysOp> + 'a,
) -> impl Iterator<Item = Gate> + 'a {
    ops.into_iter().filter_map(|op| match op.kind {
        GateKind::H => op.l1.map(|l| Gate::one(GateKind::H, l)),
        GateKind::Cphase { k } | GateKind::CphaseSwap { k } => match (op.l1, op.l2) {
            (Some(a), Some(b)) => Some(Gate::two(GateKind::Cphase { k }, a, b)),
            _ => None,
        },
        _ => None,
    })
}

/// Number of CPHASE gates in a QFT on `n` qubits: `n(n-1)/2`.
#[inline]
pub fn qft_pair_count(n: usize) -> usize {
    n * (n - 1) / 2
}

/// All unordered qubit pairs `(i, j)`, `i < j`, of an `n`-qubit register.
pub fn all_pairs(n: usize) -> impl Iterator<Item = (LogicalQubit, LogicalQubit)> {
    (0..n as u32)
        .flat_map(move |i| ((i + 1)..n as u32).map(move |j| (LogicalQubit(i), LogicalQubit(j))))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_qft_gate_count() {
        let c = qft_circuit(5);
        assert_eq!(c.len(), 5 + qft_pair_count(5));
        assert!(check_qft_circuit(&c).is_ok());
    }

    #[test]
    fn aqft_truncates_high_order_rotations() {
        // Degree >= n keeps everything (the exact QFT).
        assert_eq!(aqft_circuit(5, 5).gates(), qft_circuit(5).gates());
        assert_eq!(aqft_circuit(5, 9).gates(), qft_circuit(5).gates());
        // Degree 1 keeps only the Hadamards.
        let h_only = aqft_circuit(5, 1);
        assert_eq!(h_only.len(), 5);
        assert!(h_only.gates().iter().all(|g| g.kind == GateKind::H));
        // Degree d keeps exactly the pairs with |i-j|+1 <= d.
        for n in [2usize, 4, 7] {
            for d in 1..=(n as u32 + 2) {
                let c = aqft_circuit(n, d);
                assert_eq!(c.len(), n + aqft_pair_count(n, d), "n={n} d={d}");
                assert!(c
                    .gates()
                    .iter()
                    .all(|g| g.kind.cphase_order().is_none_or(|k| k <= d)));
            }
        }
        assert_eq!(aqft_pair_count(8, 3), 13); // 7 + 6 pairs on n=8
    }

    #[test]
    #[should_panic(expected = "degree must be >= 1")]
    fn aqft_degree_zero_panics() {
        let _ = aqft_circuit(4, 0);
    }

    #[test]
    fn qft_rotation_orders() {
        let c = qft_circuit(4);
        // First CPHASE after H(0) is R_2 between q0,q1; the one with q3 is R_4.
        let g = c.gates()[1];
        assert_eq!(g.kind, GateKind::Cphase { k: 2 });
        let g = c.gates()[3];
        assert_eq!(g.kind, GateKind::Cphase { k: 4 });
    }

    #[test]
    fn two_partition_order_is_valid() {
        // Fig. 6: U1 = {q0,q1}, U2 = {q2,q3}: QFT(U1); IE(U1,U2); QFT(U2).
        let p = Partition::Node(vec![Partition::Leaf(0..2), Partition::Leaf(2..4)]);
        let c = qft_partitioned(&p);
        assert_eq!(c.len(), 4 + qft_pair_count(4));
        assert!(check_qft_circuit(&c).is_ok(), "{:?}", check_qft_circuit(&c));
    }

    #[test]
    fn k_partition_orders_are_valid_for_many_shapes() {
        for n in [6u32, 9, 12, 17] {
            for k in [2u32, 3, 4] {
                let p = Partition::even(n, k);
                let c = qft_partitioned(&p);
                assert!(check_qft_circuit(&c).is_ok(), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn nested_partition_is_valid() {
        // Recursive: {0..3, {3..5, 5..8}}.
        let p = Partition::Node(vec![
            Partition::Leaf(0..3),
            Partition::Node(vec![Partition::Leaf(3..5), Partition::Leaf(5..8)]),
        ]);
        let c = qft_partitioned(&p);
        assert!(check_qft_circuit(&c).is_ok());
        assert_eq!(c.len(), 8 + qft_pair_count(8));
    }

    #[test]
    fn checker_rejects_broken_type_ii() {
        let mut c = Circuit::new(2);
        c.push(Gate::cphase(2, 0, 1)); // before H(0): invalid
        c.push(Gate::h(0));
        c.push(Gate::h(1));
        assert_eq!(
            check_qft_circuit(&c),
            Err(QftOrderError::TypeII { pair: (0, 1) })
        );
    }

    #[test]
    fn checker_rejects_missing_pair() {
        let mut c = Circuit::new(3);
        for q in 0..3 {
            c.push(Gate::h(q));
        }
        c.push(Gate::cphase(2, 0, 1));
        // This order also breaks TypeII for (0,1), but pair (0,2) count=0
        // and is detected in pair scanning order... (0,1) TypeII checked
        // after counts; counts run first for all pairs.
        let err = check_qft_circuit(&c).unwrap_err();
        assert!(matches!(
            err,
            QftOrderError::PairCount { .. } | QftOrderError::TypeII { .. }
        ));
    }

    #[test]
    fn checker_rejects_wrong_angle() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::cphase(7, 0, 1));
        c.push(Gate::h(1));
        assert_eq!(
            check_qft_circuit(&c),
            Err(QftOrderError::WrongAngle {
                pair: (0, 1),
                found: 7,
                expected: 2
            })
        );
    }

    #[test]
    fn partition_validate_catches_gaps() {
        let p = Partition::Node(vec![Partition::Leaf(0..2), Partition::Leaf(3..4)]);
        assert!(p.validate().is_err());
    }

    #[test]
    fn relaxed_ie_block_commutes() {
        // Any permutation of a QFT-IE block is still valid: check one.
        let mut c = Circuit::new(4);
        qft_traditional(&mut c, 0..2);
        // IE in *reversed* row-major order.
        let mut block = Circuit::new(4);
        qft_ie(&mut block, 0..2, 2..4);
        for g in block.gates().iter().rev() {
            c.push(*g);
        }
        qft_traditional(&mut c, 2..4);
        assert!(check_qft_circuit(&c).is_ok());
    }
}
