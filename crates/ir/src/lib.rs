//! # qft-ir — circuit intermediate representation
//!
//! The shared vocabulary of the QFT-kernel compiler stack:
//!
//! * [`gate`] — gates and logical/physical qubit newtypes;
//! * [`circuit`] — logical circuits and hardware-mapped circuits (with
//!   layout-tracking builder);
//! * [`layout`] — bidirectional logical↔physical maps;
//! * [`dag`] — strict (Type I+II) and relaxed (Type II only) dependency DAGs
//!   implementing the commutativity insight of §3.1 of the paper;
//! * [`qft`] — textbook and k-partitioned logical QFT builders (§3.2) plus
//!   the semantic checker every compiled kernel must pass;
//! * [`latency`] — heterogeneous link latency classes (§2.3);
//! * [`metrics`] — depth / SWAP-count accounting;
//! * [`passes`] — the pass subsystem: [`Pass`]/[`PassManager`] plus the
//!   shared peephole/scheduling/verify passes every compiler's tail runs;
//! * [`qasm`] — OpenQASM 2.0 export.

#![warn(missing_docs)]

pub mod circuit;
pub mod dag;
pub mod gate;
pub mod latency;
pub mod layout;
pub mod metrics;
pub mod passes;
pub mod qasm;
pub mod qft;
pub mod render;

pub use circuit::{Circuit, MappedCircuit, MappedCircuitBuilder, PhysOp};
pub use dag::{CircuitDag, DagMode, Frontier};
pub use gate::{Gate, GateKind, LogicalQubit, PhysicalQubit};
pub use latency::LinkClass;
pub use layout::Layout;
pub use metrics::Metrics;
pub use passes::{Pass, PassCtx, PassError, PassManager, PassReport};
pub use qft::{check_qft_circuit, check_qft_order, qft_circuit, qft_pair_count, Partition};
