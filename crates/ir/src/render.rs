//! ASCII rendering of mapped circuits as time×qubit grids — the textual
//! analogue of the paper's Fig. 3 (each column a cycle, each row a
//! physical qubit, cells showing the logical occupant and gate).

use crate::circuit::MappedCircuit;
use crate::gate::GateKind;
use std::fmt::Write as _;

/// Renders up to `max_layers` uniform-latency layers. Cells show
/// `H`, `C` (CPHASE), `x` (SWAP), `*` (fused CPHASE+SWAP) with the
/// logical qubit index, `.` idle.
pub fn render_layers(mc: &MappedCircuit, max_layers: usize) -> String {
    let layers = mc.layers_uniform();
    let shown = layers.len().min(max_layers);
    let n = mc.n_physical();
    // cell[q][t]
    let mut cells = vec![vec!["   .".to_string(); shown]; n];
    for (t, layer) in layers.iter().take(shown).enumerate() {
        for op in layer {
            let sym = match op.kind {
                GateKind::H => 'H',
                GateKind::Cphase { .. } => 'C',
                GateKind::Swap => 'x',
                GateKind::CphaseSwap { .. } => '*',
                GateKind::Cnot => '@',
                GateKind::X => 'X',
                GateKind::Rz { .. } => 'Z',
            };
            let l1 = op.l1.map(|l| l.0.to_string()).unwrap_or_else(|| "-".into());
            cells[op.p1.index()][t] = format!("{sym}{l1:>3}");
            if let (Some(p2), l2) = (op.p2, op.l2) {
                let l2 = l2.map(|l| l.0.to_string()).unwrap_or_else(|| "-".into());
                cells[p2.index()][t] = format!("{sym}{l2:>3}");
            }
        }
    }
    let mut out = String::new();
    for (q, row) in cells.iter().enumerate() {
        let _ = write!(out, "Q{q:<3}|");
        for c in row {
            let _ = write!(out, "{c}|");
        }
        out.push('\n');
    }
    if layers.len() > shown {
        let _ = writeln!(out, "... ({} more layers)", layers.len() - shown);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::MappedCircuitBuilder;
    use crate::gate::PhysicalQubit;
    use crate::layout::Layout;

    #[test]
    fn renders_small_circuit() {
        let mut b = MappedCircuitBuilder::new(Layout::identity(2, 2));
        b.push_1q_phys(GateKind::H, PhysicalQubit(0));
        b.push_2q_phys(
            GateKind::Cphase { k: 2 },
            PhysicalQubit(0),
            PhysicalQubit(1),
        );
        b.push_swap_phys(PhysicalQubit(0), PhysicalQubit(1));
        let s = render_layers(&b.finish(), 10);
        assert!(s.contains("H  0"));
        assert!(s.contains("C  0") && s.contains("C  1"));
        assert!(s.contains("x"));
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    fn truncates_long_circuits() {
        let mut b = MappedCircuitBuilder::new(Layout::identity(2, 2));
        for _ in 0..20 {
            b.push_swap_phys(PhysicalQubit(0), PhysicalQubit(1));
        }
        let s = render_layers(&b.finish(), 5);
        assert!(s.contains("more layers"));
    }
}
