//! Logical circuits and hardware-mapped circuits.
//!
//! A [`Circuit`] is a gate list on logical qubits with no placement
//! information — the compiler input. A [`MappedCircuit`] is the compiler
//! output: a stream of physical operations, each annotated with the logical
//! qubits it acted on at execution time, together with the initial and final
//! layouts. Keeping the logical annotation makes verification (coverage,
//! dependency order) O(gates) without replaying layouts.

use crate::gate::{Gate, GateKind, LogicalQubit, PhysicalQubit};
use crate::layout::Layout;
use serde::{Deserialize, Serialize};

/// A logical (hardware-agnostic) quantum circuit: an ordered gate list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    n: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// An empty circuit on `n` logical qubits.
    pub fn new(n: usize) -> Self {
        Circuit {
            n,
            gates: Vec::new(),
        }
    }

    /// Number of logical qubits.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// Appends a gate.
    ///
    /// # Panics
    /// Panics if an operand is out of range.
    pub fn push(&mut self, g: Gate) {
        assert!(
            g.qubits().all(|q| q.index() < self.n),
            "gate {g} out of range"
        );
        self.gates.push(g);
    }

    /// The gates, in program order.
    #[inline]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Total gate count.
    #[inline]
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// True if the circuit has no gates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Number of two-qubit gates.
    pub fn two_qubit_count(&self) -> usize {
        self.gates.iter().filter(|g| g.kind.arity() == 2).count()
    }

    /// Logical-circuit depth: longest chain of gates sharing qubits, each
    /// gate costing one cycle (ASAP layering).
    pub fn depth(&self) -> usize {
        let mut avail = vec![0usize; self.n];
        let mut depth = 0;
        for g in &self.gates {
            let t = g.qubits().map(|q| avail[q.index()]).max().unwrap_or(0) + 1;
            for q in g.qubits() {
                avail[q.index()] = t;
            }
            depth = depth.max(t);
        }
        depth
    }
}

/// One operation in a mapped circuit.
///
/// `p2`/`l2` are `None` for single-qubit gates. For SWAPs involving a spare
/// (unoccupied) physical qubit, the corresponding logical annotation is
/// `None`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhysOp {
    /// Gate kind.
    pub kind: GateKind,
    /// First physical operand.
    pub p1: PhysicalQubit,
    /// Second physical operand, for two-qubit gates.
    pub p2: Option<PhysicalQubit>,
    /// Logical qubit at `p1` when the op executed.
    pub l1: Option<LogicalQubit>,
    /// Logical qubit at `p2` when the op executed.
    pub l2: Option<LogicalQubit>,
}

impl PhysOp {
    /// Physical operands, in order.
    #[inline]
    pub fn phys(&self) -> impl Iterator<Item = PhysicalQubit> + '_ {
        std::iter::once(self.p1).chain(self.p2)
    }

    /// The unordered logical pair for a two-qubit gate, if both sides carry
    /// program qubits, normalized so the smaller index comes first.
    pub fn logical_pair(&self) -> Option<(LogicalQubit, LogicalQubit)> {
        match (self.l1, self.l2) {
            (Some(a), Some(b)) => Some(if a <= b { (a, b) } else { (b, a) }),
            _ => None,
        }
    }
}

/// A hardware-mapped circuit: the compiler's output artifact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MappedCircuit {
    n_logical: usize,
    n_physical: usize,
    initial: Layout,
    final_layout: Layout,
    ops: Vec<PhysOp>,
}

impl MappedCircuit {
    /// Number of logical (program) qubits.
    #[inline]
    pub fn n_logical(&self) -> usize {
        self.n_logical
    }

    /// Number of physical (device) qubits.
    #[inline]
    pub fn n_physical(&self) -> usize {
        self.n_physical
    }

    /// The initial logical→physical placement.
    #[inline]
    pub fn initial_layout(&self) -> &Layout {
        &self.initial
    }

    /// The placement after all SWAPs have executed.
    #[inline]
    pub fn final_layout(&self) -> &Layout {
        &self.final_layout
    }

    /// The operation stream, in execution order.
    #[inline]
    pub fn ops(&self) -> &[PhysOp] {
        &self.ops
    }

    /// The logical H/CPHASE gate stream of this circuit, SWAPs dropped and
    /// fused `CPHASE+SWAP` interactions contributing their rotation — the
    /// stream every simulator-backed equivalence check replays. Delegates
    /// to [`crate::qft::logical_interactions`].
    pub fn logical_interactions(&self) -> impl Iterator<Item = Gate> + '_ {
        crate::qft::logical_interactions(self.ops())
    }

    /// Number of standalone SWAP gates inserted. A fused
    /// [`GateKind::CphaseSwap`] interaction is *not* counted: its swap
    /// rides along with the CPHASE at no extra gate cost (that reduction
    /// is the point of the `merge-swap-cphase` pass).
    pub fn swap_count(&self) -> usize {
        self.ops.iter().filter(|o| o.kind == GateKind::Swap).count()
    }

    /// Number of CPHASE interactions, counting fused
    /// [`GateKind::CphaseSwap`] gates (which perform the rotation too) —
    /// `n(n-1)/2` for any valid full-QFT kernel.
    pub fn cphase_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| o.kind.cphase_order().is_some())
            .count()
    }

    /// Uniform-latency depth: every gate costs one cycle (the NISQ cycle
    /// count used for Sycamore and heavy-hex in the paper).
    pub fn depth_uniform(&self) -> u64 {
        self.depth_with(|_| 1)
    }

    /// Depth under a per-operation latency function (ASAP schedule over the
    /// op stream, respecting per-qubit ordering).
    pub fn depth_with(&self, latency: impl Fn(&PhysOp) -> u64) -> u64 {
        let mut avail = vec![0u64; self.n_physical];
        let mut depth = 0;
        for op in &self.ops {
            let start = op.phys().map(|p| avail[p.index()]).max().unwrap_or(0);
            let end = start + latency(op);
            for p in op.phys() {
                avail[p.index()] = end;
            }
            depth = depth.max(end);
        }
        depth
    }

    /// Depth counting only layers that contain two-qubit gates (the "cycle"
    /// convention of the paper's complexity formulas, e.g. 4N−6 for LNN).
    pub fn two_qubit_depth(&self) -> u64 {
        self.depth_with(|op| if op.kind.arity() == 2 { 1 } else { 0 })
    }

    /// Replaces the op stream in place — the mutation hook for
    /// [`crate::passes`] implementations.
    ///
    /// The initial/final layouts and qubit counts are preserved: a pass must
    /// only apply rewrites that keep the stream consistent with them (every
    /// op's logical annotations must match SWAP replay from the initial
    /// layout, and the replayed final layout must be unchanged — a pass
    /// that deletes layout-moving ops, like `prune-dead-swap-chains`, must
    /// follow up with [`Self::recompute_final_layout`]). The
    /// [`crate::passes::CheckLayout`] pass verifies exactly this.
    pub fn set_ops(&mut self, ops: Vec<PhysOp>) {
        self.ops = ops;
    }

    /// Re-derives the recorded final layout by replaying every
    /// layout-moving op from the initial layout. Passes that *remove*
    /// SWAPs whose permutation is never consumed again (the
    /// `prune-dead-swap-chains` cleanup after AQFT truncation) call this so
    /// the final-layout bookkeeping tracks the shortened stream.
    pub fn recompute_final_layout(&mut self) {
        let mut layout = self.initial.clone();
        for op in &self.ops {
            if op.kind.swaps_operands() {
                if let Some(p2) = op.p2 {
                    layout.swap_phys(op.p1, p2);
                }
            }
        }
        self.final_layout = layout;
    }

    /// Takes the op stream out of the circuit (leaving it empty), avoiding
    /// a copy when a pass rewrites in place. Pair with [`Self::set_ops`] to
    /// put the (possibly rewritten) stream back.
    pub fn take_ops(&mut self) -> Vec<PhysOp> {
        std::mem::take(&mut self.ops)
    }

    /// Groups the op stream into ASAP layers of unit latency, for display
    /// and for layer-structure tests.
    pub fn layers_uniform(&self) -> Vec<Vec<PhysOp>> {
        let mut avail = vec![0u64; self.n_physical];
        let mut layers: Vec<Vec<PhysOp>> = Vec::new();
        for op in &self.ops {
            let start = op.phys().map(|p| avail[p.index()]).max().unwrap_or(0);
            for p in op.phys() {
                avail[p.index()] = start + 1;
            }
            if layers.len() <= start as usize {
                layers.resize_with(start as usize + 1, Vec::new);
            }
            layers[start as usize].push(*op);
        }
        layers
    }
}

/// Incremental builder for [`MappedCircuit`] that tracks the live layout.
///
/// All compiler back-ends and baselines emit through this builder, which
/// guarantees the layout bookkeeping (invariant 4 in DESIGN.md) by
/// construction.
#[derive(Debug, Clone)]
pub struct MappedCircuitBuilder {
    n_logical: usize,
    n_physical: usize,
    layout: Layout,
    initial: Layout,
    ops: Vec<PhysOp>,
}

impl MappedCircuitBuilder {
    /// Starts a mapped circuit from `initial` placement.
    pub fn new(initial: Layout) -> Self {
        MappedCircuitBuilder {
            n_logical: initial.n_logical(),
            n_physical: initial.n_physical(),
            layout: initial.clone(),
            initial,
            ops: Vec::new(),
        }
    }

    /// The live layout (placement right now).
    #[inline]
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Ops emitted so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if nothing has been emitted.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Emits a single-qubit gate on the *logical* qubit `l` (resolved to its
    /// current physical location).
    pub fn push_1q_logical(&mut self, kind: GateKind, l: LogicalQubit) {
        debug_assert_eq!(kind.arity(), 1);
        let p = self.layout.phys(l);
        self.ops.push(PhysOp {
            kind,
            p1: p,
            p2: None,
            l1: Some(l),
            l2: None,
        });
    }

    /// Emits a two-qubit non-SWAP gate between *logical* qubits.
    pub fn push_2q_logical(&mut self, kind: GateKind, a: LogicalQubit, b: LogicalQubit) {
        debug_assert_eq!(kind.arity(), 2);
        debug_assert!(
            !kind.swaps_operands(),
            "use push_swap_phys / push_cphase_swap_phys for layout-moving gates"
        );
        let (p1, p2) = (self.layout.phys(a), self.layout.phys(b));
        self.ops.push(PhysOp {
            kind,
            p1,
            p2: Some(p2),
            l1: Some(a),
            l2: Some(b),
        });
    }

    /// Emits a two-qubit non-SWAP gate between *physical* locations; logical
    /// annotations are taken from the live layout.
    pub fn push_2q_phys(&mut self, kind: GateKind, p1: PhysicalQubit, p2: PhysicalQubit) {
        debug_assert_eq!(kind.arity(), 2);
        debug_assert!(
            !kind.swaps_operands(),
            "use push_swap_phys / push_cphase_swap_phys for layout-moving gates"
        );
        let (l1, l2) = (self.layout.logical(p1), self.layout.logical(p2));
        self.ops.push(PhysOp {
            kind,
            p1,
            p2: Some(p2),
            l1,
            l2,
        });
    }

    /// Emits a single-qubit gate at a *physical* location.
    pub fn push_1q_phys(&mut self, kind: GateKind, p: PhysicalQubit) {
        debug_assert_eq!(kind.arity(), 1);
        let l = self.layout.logical(p);
        self.ops.push(PhysOp {
            kind,
            p1: p,
            p2: None,
            l1: l,
            l2: None,
        });
    }

    /// Emits a fused CPHASE+SWAP interaction ([`GateKind::CphaseSwap`])
    /// between two physical locations and updates the layout (the fused
    /// gate moves its operands exactly like a SWAP).
    pub fn push_cphase_swap_phys(&mut self, k: u32, p1: PhysicalQubit, p2: PhysicalQubit) {
        let (l1, l2) = (self.layout.logical(p1), self.layout.logical(p2));
        self.ops.push(PhysOp {
            kind: GateKind::CphaseSwap { k },
            p1,
            p2: Some(p2),
            l1,
            l2,
        });
        self.layout.swap_phys(p1, p2);
    }

    /// Emits a SWAP between two physical locations and updates the layout.
    pub fn push_swap_phys(&mut self, p1: PhysicalQubit, p2: PhysicalQubit) {
        let (l1, l2) = (self.layout.logical(p1), self.layout.logical(p2));
        self.ops.push(PhysOp {
            kind: GateKind::Swap,
            p1,
            p2: Some(p2),
            l1,
            l2,
        });
        self.layout.swap_phys(p1, p2);
    }

    /// Emits a SWAP between the current locations of two logical qubits.
    pub fn push_swap_logical(&mut self, a: LogicalQubit, b: LogicalQubit) {
        let (p1, p2) = (self.layout.phys(a), self.layout.phys(b));
        self.push_swap_phys(p1, p2);
    }

    /// Finalizes into an immutable [`MappedCircuit`].
    pub fn finish(self) -> MappedCircuit {
        MappedCircuit {
            n_logical: self.n_logical,
            n_physical: self.n_physical,
            initial: self.initial,
            final_layout: self.layout,
            ops: self.ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_depth_asap() {
        let mut c = Circuit::new(3);
        c.push(Gate::h(0));
        c.push(Gate::h(1)); // parallel with H(0)
        c.push(Gate::cphase(2, 0, 1)); // after both
        c.push(Gate::h(2)); // parallel with everything
        assert_eq!(c.depth(), 2);
    }

    #[test]
    fn builder_tracks_layout_through_swaps() {
        let mut b = MappedCircuitBuilder::new(Layout::identity(3, 3));
        b.push_swap_phys(PhysicalQubit(0), PhysicalQubit(1));
        b.push_2q_phys(
            GateKind::Cphase { k: 2 },
            PhysicalQubit(1),
            PhysicalQubit(2),
        );
        let mc = b.finish();
        // After the swap, Q1 holds q0, so the CPHASE acts on (q0, q2).
        assert_eq!(
            mc.ops()[1].logical_pair(),
            Some((LogicalQubit(0), LogicalQubit(2)))
        );
        assert_eq!(mc.final_layout().phys(LogicalQubit(0)), PhysicalQubit(1));
        assert_eq!(mc.swap_count(), 1);
    }

    #[test]
    fn uniform_depth_counts_serial_chain() {
        let mut b = MappedCircuitBuilder::new(Layout::identity(2, 2));
        b.push_1q_phys(GateKind::H, PhysicalQubit(0));
        b.push_2q_phys(
            GateKind::Cphase { k: 2 },
            PhysicalQubit(0),
            PhysicalQubit(1),
        );
        b.push_swap_phys(PhysicalQubit(0), PhysicalQubit(1));
        let mc = b.finish();
        assert_eq!(mc.depth_uniform(), 3);
        assert_eq!(mc.two_qubit_depth(), 2);
    }

    #[test]
    fn weighted_depth_uses_latency_fn() {
        let mut b = MappedCircuitBuilder::new(Layout::identity(2, 2));
        b.push_2q_phys(
            GateKind::Cphase { k: 2 },
            PhysicalQubit(0),
            PhysicalQubit(1),
        );
        b.push_swap_phys(PhysicalQubit(0), PhysicalQubit(1));
        let mc = b.finish();
        let d = mc.depth_with(|op| if op.kind == GateKind::Swap { 6 } else { 2 });
        assert_eq!(d, 8);
    }

    #[test]
    fn layers_group_parallel_ops() {
        let mut b = MappedCircuitBuilder::new(Layout::identity(4, 4));
        b.push_2q_phys(
            GateKind::Cphase { k: 2 },
            PhysicalQubit(0),
            PhysicalQubit(1),
        );
        b.push_2q_phys(
            GateKind::Cphase { k: 2 },
            PhysicalQubit(2),
            PhysicalQubit(3),
        );
        b.push_swap_phys(PhysicalQubit(1), PhysicalQubit(2));
        let layers = b.finish().layers_uniform();
        assert_eq!(layers.len(), 2);
        assert_eq!(layers[0].len(), 2);
        assert_eq!(layers[1].len(), 1);
    }
}
