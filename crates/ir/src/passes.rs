//! The pass subsystem: composable rewrites over [`MappedCircuit`]s.
//!
//! Every compiler in the stack — the paper's four analytical mappers and
//! the three search baselines — emits its kernel through a *construct*
//! stage and then hands the circuit to a [`PassManager`] tail. A [`Pass`]
//! is a local, semantics-preserving rewrite (or a pure check); the manager
//! chains passes, timing each one and recording gate/depth/SWAP deltas in
//! a serde-serializable [`PassReport`] so the per-pass breakdown travels
//! with the compile result.
//!
//! The shared concrete passes:
//!
//! * [`CancelAdjacentSwaps`] — peephole: back-to-back SWAPs on the same
//!   physical pair (with nothing touching either qubit in between) compose
//!   to the identity and are deleted;
//! * [`MergeSwapCphase`] — the paper's *combined interaction*: a CPHASE
//!   adjacent to a SWAP on the same pair fuses into one
//!   [`GateKind::CphaseSwap`] two-qubit interaction (CPHASE is diagonal
//!   and symmetric, so it commutes with the SWAP on its own pair and the
//!   fusion is exact);
//! * [`AsapLayering`] — scheduling: stable-reorders the op stream into
//!   uniform ASAP layers (per-qubit order is preserved, so the rewrite is
//!   an identity on semantics and on layout bookkeeping);
//! * [`AqftTruncate`] — approximation: drops every `R_k` rotation with
//!   `k > degree` (Coppersmith's AQFT truncation), demoting fused
//!   [`GateKind::CphaseSwap`] interactions to plain SWAPs so routing
//!   bookkeeping survives;
//! * [`PruneDeadSwapChains`] — cleanup after truncation: removes SWAPs
//!   whose permutation no later surviving op consumes (the routing chains
//!   truncation strands), then recomputes the final layout;
//! * [`CheckLayout`] — verify: replays SWAPs from the initial layout and
//!   checks every op's logical annotations, operand sanity, coupling-graph
//!   adjacency (when the [`PassCtx`] carries an oracle), and the recorded
//!   final layout. Never rewrites.
//!
//! Passes are addressable by name through [`named`] (see [`PASS_NAMES`]),
//! which is how `CompileOptions::extra_passes` strings resolve. The
//! truncation pass is parameterized and resolves from the form
//! `aqft-truncate(degree)`, e.g. `aqft-truncate(3)`.

use crate::circuit::{MappedCircuit, PhysOp};
use crate::gate::{GateKind, PhysicalQubit};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Instant;

/// Read-only context a pass runs under.
///
/// Lives in `qft-ir`, which knows nothing about device models, so hardware
/// structure enters as an *oracle*: an optional adjacency predicate over
/// physical qubits. Peephole passes never need it (they only rewrite ops in
/// place on pairs that were already adjacent); [`CheckLayout`] uses it to
/// verify hardware compliance when present.
#[derive(Default)]
pub struct PassCtx<'a> {
    adjacent: Option<&'a dyn Fn(PhysicalQubit, PhysicalQubit) -> bool>,
}

impl<'a> PassCtx<'a> {
    /// A context with no device knowledge (adjacency checks are skipped).
    pub fn new() -> Self {
        PassCtx::default()
    }

    /// A context carrying a coupling-graph adjacency oracle.
    pub fn with_adjacency(adjacent: &'a dyn Fn(PhysicalQubit, PhysicalQubit) -> bool) -> Self {
        PassCtx {
            adjacent: Some(adjacent),
        }
    }

    /// Whether an adjacency oracle is available.
    pub fn has_adjacency(&self) -> bool {
        self.adjacent.is_some()
    }

    /// Adjacency of two physical qubits; vacuously true without an oracle.
    pub fn adjacent(&self, a: PhysicalQubit, b: PhysicalQubit) -> bool {
        self.adjacent.map(|f| f(a, b)).unwrap_or(true)
    }
}

impl fmt::Debug for PassCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PassCtx")
            .field("has_adjacency", &self.has_adjacency())
            .finish()
    }
}

/// What one pass did to one circuit: filled in by the pass (`rewrites`,
/// `note`) and completed by the [`PassManager`] (wall time and the
/// before/after op, SWAP, and depth columns).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PassReport {
    /// Registry name of the pass.
    pub pass: String,
    /// Number of rewrites applied (0 = the pass left the circuit alone).
    pub rewrites: usize,
    /// Wall-clock seconds this pass took.
    pub wall_s: f64,
    /// Op count entering the pass.
    pub ops_before: usize,
    /// Op count leaving the pass.
    pub ops_after: usize,
    /// Standalone SWAP count entering the pass.
    pub swaps_before: usize,
    /// Standalone SWAP count leaving the pass.
    pub swaps_after: usize,
    /// Uniform-latency depth entering the pass.
    pub depth_before: u64,
    /// Uniform-latency depth leaving the pass.
    pub depth_after: u64,
    /// Number of `R_k` rotations this pass dropped (only the
    /// [`AqftTruncate`] pass reports a non-zero count; a demoted
    /// `CphaseSwap` counts as one dropped rotation even though the SWAP
    /// half survives).
    pub dropped_rotations: usize,
    /// Free-form annotation from the pass.
    pub note: String,
}

impl PassReport {
    /// A zeroed report for `pass`; the manager fills the delta columns.
    pub fn new(pass: &str) -> Self {
        PassReport {
            pass: pass.to_string(),
            rewrites: 0,
            wall_s: 0.0,
            ops_before: 0,
            ops_after: 0,
            swaps_before: 0,
            swaps_after: 0,
            depth_before: 0,
            depth_after: 0,
            dropped_rotations: 0,
            note: String::new(),
        }
    }

    /// Builder-style: record the number of rewrites.
    pub fn with_rewrites(mut self, rewrites: usize) -> Self {
        self.rewrites = rewrites;
        self
    }

    /// Builder-style: record the number of dropped rotations.
    pub fn with_dropped_rotations(mut self, dropped: usize) -> Self {
        self.dropped_rotations = dropped;
        self
    }

    /// Builder-style: attach an annotation.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.note = note.into();
        self
    }

    /// Whether the pass changed the circuit.
    pub fn changed(&self) -> bool {
        self.rewrites > 0
    }
}

/// A pass failure: the circuit violated an invariant the pass depends on
/// (or, for verify passes, the property being checked).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassError {
    /// Registry name of the failing pass.
    pub pass: String,
    /// What went wrong.
    pub reason: String,
}

impl PassError {
    /// Builds an error for `pass`.
    pub fn new(pass: &str, reason: impl Into<String>) -> Self {
        PassError {
            pass: pass.to_string(),
            reason: reason.into(),
        }
    }
}

impl fmt::Display for PassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pass '{}' failed: {}", self.pass, self.reason)
    }
}

impl std::error::Error for PassError {}

/// A compilation pass: a named, reusable rewrite (or check) over a mapped
/// circuit. Implementations must preserve circuit semantics and layout
/// bookkeeping — [`CheckLayout`] is the executable statement of that
/// contract.
pub trait Pass: Send + Sync {
    /// Registry name (kebab-case, e.g. `"cancel-adjacent-swaps"`).
    fn name(&self) -> &'static str;

    /// One-line description for listings.
    fn description(&self) -> &'static str;

    /// Runs the pass. Returns a report with `rewrites`/`note` filled in
    /// ([`PassManager::run`] completes the timing and delta columns).
    fn run(&self, circuit: &mut MappedCircuit, ctx: &PassCtx) -> Result<PassReport, PassError>;
}

/// An ordered pass pipeline with per-pass accounting.
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
}

impl PassManager {
    /// An empty pipeline.
    pub fn new() -> Self {
        PassManager { passes: Vec::new() }
    }

    /// Builder-style: append a pass.
    pub fn with_pass(mut self, pass: Box<dyn Pass>) -> Self {
        self.passes.push(pass);
        self
    }

    /// Appends a pass.
    pub fn push(&mut self, pass: Box<dyn Pass>) {
        self.passes.push(pass);
    }

    /// Names of the registered passes, in run order.
    pub fn names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Number of passes in the pipeline.
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// Whether the pipeline is empty.
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// Runs every pass in order, aborting on the first failure. Each
    /// report's wall time and before/after columns are measured here so
    /// individual passes cannot mis-report them.
    pub fn run(
        &self,
        circuit: &mut MappedCircuit,
        ctx: &PassCtx,
    ) -> Result<Vec<PassReport>, PassError> {
        let mut reports = Vec::with_capacity(self.passes.len());
        for pass in &self.passes {
            let (ops_before, swaps_before, depth_before) = (
                circuit.ops().len(),
                circuit.swap_count(),
                circuit.depth_uniform(),
            );
            let t0 = Instant::now();
            let mut report = pass.run(circuit, ctx)?;
            report.wall_s = t0.elapsed().as_secs_f64();
            report.pass = pass.name().to_string();
            report.ops_before = ops_before;
            report.swaps_before = swaps_before;
            report.depth_before = depth_before;
            report.ops_after = circuit.ops().len();
            report.swaps_after = circuit.swap_count();
            report.depth_after = circuit.depth_uniform();
            reports.push(report);
        }
        Ok(reports)
    }
}

impl fmt::Debug for PassManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PassManager")
            .field("passes", &self.names())
            .finish()
    }
}

/// Names accepted by [`named`], in canonical order. The parameterized
/// truncation pass is additionally accepted as `aqft-truncate(degree)`
/// with `degree >= 1`.
pub const PASS_NAMES: &[&str] = &[
    "cancel-adjacent-swaps",
    "merge-swap-cphase",
    "asap-layering",
    "prune-dead-swap-chains",
    "check-layout",
];

/// Resolves a shared pass by its registry name. Accepts the parameterized
/// form `aqft-truncate(degree)` (e.g. `aqft-truncate(3)`) for the AQFT
/// truncation pass; a missing, zero, or malformed degree fails to resolve.
pub fn named(name: &str) -> Option<Box<dyn Pass>> {
    match name {
        "cancel-adjacent-swaps" => Some(Box::new(CancelAdjacentSwaps)),
        "merge-swap-cphase" => Some(Box::new(MergeSwapCphase)),
        "asap-layering" => Some(Box::new(AsapLayering)),
        "prune-dead-swap-chains" => Some(Box::new(PruneDeadSwapChains)),
        "check-layout" => Some(Box::new(CheckLayout)),
        _ => {
            let degree: u32 = name
                .strip_prefix("aqft-truncate(")?
                .strip_suffix(')')?
                .parse()
                .ok()?;
            (degree >= 1).then(|| Box::new(AqftTruncate { degree }) as Box<dyn Pass>)
        }
    }
}

/// Whether `a` and `b` act on the same unordered physical pair.
fn same_pair(a: &PhysOp, b: &PhysOp) -> bool {
    match (a.p2, b.p2) {
        (Some(a2), Some(b2)) => (a.p1, a2) == (b.p1, b2) || (a.p1, a2) == (b2, b.p1),
        _ => false,
    }
}

/// One scan of a peephole: for each two-qubit op, finds the *previous* op
/// touching either of its qubits (with nothing in between on either), and
/// lets `rewrite` fuse or cancel the pair. Returns rewrites applied.
fn peephole_scan(
    ops: &mut Vec<PhysOp>,
    mut rewrite: impl FnMut(&PhysOp, &PhysOp) -> Option<Option<PhysOp>>,
) -> usize {
    // last_touch[p] = index in `ops` of the most recent live op touching p.
    let n_phys = ops
        .iter()
        .flat_map(|o| o.phys())
        .map(|p| p.index() + 1)
        .max()
        .unwrap_or(0);
    let mut last_touch: Vec<Option<usize>> = vec![None; n_phys];
    let mut removed = vec![false; ops.len()];
    let mut rewrites = 0;
    for j in 0..ops.len() {
        let op = ops[j];
        // The candidate is valid only if it is the last op on BOTH qubits
        // (nothing touched either in between) and still live.
        let prev = match (op.p2, last_touch[op.p1.index()]) {
            (Some(p2), Some(i1)) => match last_touch[p2.index()] {
                Some(i2) if i1 == i2 && !removed[i1] => Some(i1),
                _ => None,
            },
            _ => None,
        };
        if let Some(i) = prev {
            if same_pair(&ops[i], &op) {
                if let Some(replacement) = rewrite(&ops[i], &op) {
                    rewrites += 1;
                    match replacement {
                        Some(fused) => {
                            ops[i] = fused;
                            removed[j] = true;
                        }
                        None => {
                            removed[i] = true;
                            removed[j] = true;
                        }
                    }
                }
            }
        }
        for p in op.phys() {
            last_touch[p.index()] = Some(j);
        }
    }
    if rewrites > 0 {
        let mut idx = 0;
        ops.retain(|_| {
            let keep = !removed[idx];
            idx += 1;
            keep
        });
    }
    rewrites
}

/// Peephole: deletes pairs of SWAPs on the same physical pair with nothing
/// touching either qubit in between — their composition is the identity on
/// both state and layout, so removal is exact.
#[derive(Debug, Clone, Copy, Default)]
pub struct CancelAdjacentSwaps;

impl Pass for CancelAdjacentSwaps {
    fn name(&self) -> &'static str {
        "cancel-adjacent-swaps"
    }

    fn description(&self) -> &'static str {
        "delete back-to-back SWAP pairs on the same physical link"
    }

    fn run(&self, circuit: &mut MappedCircuit, _ctx: &PassCtx) -> Result<PassReport, PassError> {
        let mut ops = circuit.take_ops();
        let mut total = 0;
        // Chains (SWAP SWAP SWAP SWAP) cancel across iterations; each scan
        // is O(ops), and real compiler output converges in one.
        loop {
            let n = peephole_scan(&mut ops, |prev, cur| {
                (prev.kind == GateKind::Swap && cur.kind == GateKind::Swap).then_some(None)
            });
            total += n;
            if n == 0 {
                break;
            }
        }
        circuit.set_ops(ops);
        Ok(PassReport::new(self.name()).with_rewrites(total))
    }
}

/// Peephole: fuses a CPHASE and a SWAP on the same physical pair (with
/// nothing touching either qubit in between) into one
/// [`GateKind::CphaseSwap`] interaction — the paper's combined
/// SWAP+CPhase two-qubit interaction. Both orders fuse: CPHASE is
/// diagonal and symmetric, so it commutes with the SWAP on its own pair.
#[derive(Debug, Clone, Copy, Default)]
pub struct MergeSwapCphase;

impl Pass for MergeSwapCphase {
    fn name(&self) -> &'static str {
        "merge-swap-cphase"
    }

    fn description(&self) -> &'static str {
        "fuse CPHASE+SWAP on the same link into one combined interaction"
    }

    fn run(&self, circuit: &mut MappedCircuit, _ctx: &PassCtx) -> Result<PassReport, PassError> {
        let mut ops = circuit.take_ops();
        let rewrites = peephole_scan(&mut ops, |prev, cur| match (prev.kind, cur.kind) {
            // The fused op keeps the FIRST op's position, operands, and
            // logical annotations: replay applies the CPHASE and then the
            // swap, which matches either unfused order exactly (the pair's
            // occupants only exchange, and CPHASE is symmetric).
            (GateKind::Cphase { k }, GateKind::Swap) | (GateKind::Swap, GateKind::Cphase { k }) => {
                Some(Some(PhysOp {
                    kind: GateKind::CphaseSwap { k },
                    ..*prev
                }))
            }
            _ => None,
        });
        circuit.set_ops(ops);
        Ok(PassReport::new(self.name()).with_rewrites(rewrites))
    }
}

/// Scheduling: stable-reorders the op stream into uniform-latency ASAP
/// layers (ops within a layer keep their original relative order). The
/// rewrite preserves per-qubit op order, so semantics, annotations, and
/// layout replay are untouched; it exists to give downstream consumers a
/// layer-contiguous stream and to normalize streams emitted out of
/// schedule order by search-based compilers.
#[derive(Debug, Clone, Copy, Default)]
pub struct AsapLayering;

impl Pass for AsapLayering {
    fn name(&self) -> &'static str {
        "asap-layering"
    }

    fn description(&self) -> &'static str {
        "stable-reorder the op stream into uniform ASAP layers"
    }

    fn run(&self, circuit: &mut MappedCircuit, _ctx: &PassCtx) -> Result<PassReport, PassError> {
        let relaid: Vec<PhysOp> = circuit.layers_uniform().into_iter().flatten().collect();
        let moved = relaid
            .iter()
            .zip(circuit.ops())
            .filter(|(a, b)| a != b)
            .count();
        if moved > 0 {
            circuit.set_ops(relaid);
        }
        Ok(PassReport::new(self.name()).with_rewrites(moved))
    }
}

/// Approximation: the AQFT truncation of Coppersmith applied *after*
/// mapping. Every `R_k` rotation with `k > degree` is dropped: a plain
/// [`GateKind::Cphase`] op is deleted outright, while a fused
/// [`GateKind::CphaseSwap`] is demoted to a plain SWAP (its rotation is
/// truncated but its routing half still moves qubits, so layout replay is
/// untouched). Rotations kept/dropped match [`crate::qft::aqft_circuit`]
/// exactly; the stranded SWAP chains the deleted rotations leave behind
/// are the business of `cancel-adjacent-swaps` + [`PruneDeadSwapChains`].
#[derive(Debug, Clone, Copy)]
pub struct AqftTruncate {
    /// Keep rotations of order `k <= degree`; must be `>= 1`.
    pub degree: u32,
}

impl Pass for AqftTruncate {
    fn name(&self) -> &'static str {
        "aqft-truncate"
    }

    fn description(&self) -> &'static str {
        "drop R_k rotations with k above the AQFT degree (post-mapping)"
    }

    fn run(&self, circuit: &mut MappedCircuit, _ctx: &PassCtx) -> Result<PassReport, PassError> {
        if self.degree == 0 {
            return Err(PassError::new(
                self.name(),
                "degree 0 would truncate every rotation; use degree >= 1",
            ));
        }
        let mut ops = circuit.take_ops();
        let mut dropped = 0usize;
        ops.retain_mut(|op| match op.kind {
            GateKind::Cphase { k } if k > self.degree => {
                dropped += 1;
                false
            }
            GateKind::CphaseSwap { k } if k > self.degree => {
                dropped += 1;
                op.kind = GateKind::Swap;
                true
            }
            _ => true,
        });
        circuit.set_ops(ops);
        Ok(PassReport::new(self.name())
            .with_rewrites(dropped)
            .with_dropped_rotations(dropped)
            .with_note(format!("degree {}", self.degree)))
    }
}

/// Cleanup: removes routing whose only consumer was truncated away. A
/// backward liveness scan keeps a SWAP only if some later surviving op
/// touches either of its physical qubits — otherwise its permutation is
/// never consumed and the SWAP (and transitively the whole stranded chain)
/// is deleted. The recorded final layout is recomputed from the shortened
/// stream, so `check-layout` still gates the result.
///
/// Dropping a trailing SWAP changes where logical qubits *end up*, not the
/// logical state, and the final layout is part of the artifact — so this
/// is exact under the same convention the rest of the stack uses (SWAPs
/// are routing, consumers read out through `final_layout`).
#[derive(Debug, Clone, Copy, Default)]
pub struct PruneDeadSwapChains;

impl Pass for PruneDeadSwapChains {
    fn name(&self) -> &'static str {
        "prune-dead-swap-chains"
    }

    fn description(&self) -> &'static str {
        "delete SWAPs whose permutation no later op consumes"
    }

    fn run(&self, circuit: &mut MappedCircuit, _ctx: &PassCtx) -> Result<PassReport, PassError> {
        let mut ops = circuit.take_ops();
        let mut live = vec![false; circuit.n_physical()];
        let mut keep = vec![true; ops.len()];
        let mut removed = 0usize;
        for (i, op) in ops.iter().enumerate().rev() {
            let consumed = op.phys().any(|p| live[p.index()]);
            if op.kind == GateKind::Swap && !consumed {
                keep[i] = false;
                removed += 1;
            } else {
                for p in op.phys() {
                    live[p.index()] = true;
                }
            }
        }
        if removed > 0 {
            let mut idx = 0;
            ops.retain(|_| {
                let k = keep[idx];
                idx += 1;
                k
            });
            circuit.set_ops(ops);
            circuit.recompute_final_layout();
        } else {
            circuit.set_ops(ops);
        }
        Ok(PassReport::new(self.name()).with_rewrites(removed))
    }
}

/// Verify: replays SWAPs from the initial layout and checks that every
/// op's logical annotations match, that operands are sane (arity, no
/// self-loops), that two-qubit ops respect the adjacency oracle (when the
/// context has one), and that the recorded final layout equals the replay.
/// Never rewrites; failing any check is a [`PassError`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckLayout;

impl Pass for CheckLayout {
    fn name(&self) -> &'static str {
        "check-layout"
    }

    fn description(&self) -> &'static str {
        "replay SWAPs and verify annotations, adjacency, and final layout"
    }

    fn run(&self, circuit: &mut MappedCircuit, ctx: &PassCtx) -> Result<PassReport, PassError> {
        let fail = |reason: String| PassError::new(self.name(), reason);
        let mut layout = circuit.initial_layout().clone();
        for (i, op) in circuit.ops().iter().enumerate() {
            match op.p2 {
                None => {
                    if op.kind.arity() != 1 {
                        return Err(fail(format!(
                            "op #{i} ({}) lacks a second operand",
                            op.kind
                        )));
                    }
                    if layout.logical(op.p1) != op.l1 {
                        return Err(fail(format!("op #{i} annotation disagrees with replay")));
                    }
                }
                Some(p2) => {
                    if op.kind.arity() != 2 {
                        return Err(fail(format!(
                            "op #{i} ({}) has a spurious operand",
                            op.kind
                        )));
                    }
                    if op.p1 == p2 {
                        return Err(fail(format!("op #{i} acts twice on {}", op.p1)));
                    }
                    if !ctx.adjacent(op.p1, p2) {
                        return Err(fail(format!(
                            "op #{i} spans non-adjacent qubits {} and {p2}",
                            op.p1
                        )));
                    }
                    if layout.logical(op.p1) != op.l1 || layout.logical(p2) != op.l2 {
                        return Err(fail(format!("op #{i} annotation disagrees with replay")));
                    }
                    if op.kind.swaps_operands() {
                        layout.swap_phys(op.p1, p2);
                    }
                }
            }
        }
        if &layout != circuit.final_layout() {
            return Err(fail("final layout does not match SWAP replay".to_string()));
        }
        let note = format!(
            "{} ops checked{}",
            circuit.ops().len(),
            if ctx.has_adjacency() {
                " (with adjacency)"
            } else {
                ""
            }
        );
        Ok(PassReport::new(self.name()).with_note(note))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::MappedCircuitBuilder;
    use crate::layout::Layout;

    fn p(i: u32) -> PhysicalQubit {
        PhysicalQubit(i)
    }

    /// H(0); CP(0,1); SWAP(0,1); SWAP(0,1); CP(1,2) — the double SWAP is
    /// redundant.
    fn with_redundant_swaps() -> MappedCircuit {
        let mut b = MappedCircuitBuilder::new(Layout::identity(3, 3));
        b.push_1q_phys(GateKind::H, p(0));
        b.push_2q_phys(GateKind::Cphase { k: 2 }, p(0), p(1));
        b.push_swap_phys(p(0), p(1));
        b.push_swap_phys(p(0), p(1));
        b.push_2q_phys(GateKind::Cphase { k: 2 }, p(1), p(2));
        b.finish()
    }

    #[test]
    fn cancel_removes_redundant_swap_pairs() {
        let mut mc = with_redundant_swaps();
        let report = CancelAdjacentSwaps.run(&mut mc, &PassCtx::new()).unwrap();
        assert_eq!(report.rewrites, 1);
        assert_eq!(mc.ops().len(), 3);
        assert_eq!(mc.swap_count(), 0);
        CheckLayout.run(&mut mc, &PassCtx::new()).unwrap();
    }

    #[test]
    fn cancel_handles_chains() {
        let mut b = MappedCircuitBuilder::new(Layout::identity(2, 2));
        for _ in 0..4 {
            b.push_swap_phys(p(0), p(1));
        }
        let mut mc = b.finish();
        let report = CancelAdjacentSwaps.run(&mut mc, &PassCtx::new()).unwrap();
        assert_eq!(report.rewrites, 2);
        assert!(mc.ops().is_empty());
        CheckLayout.run(&mut mc, &PassCtx::new()).unwrap();
    }

    #[test]
    fn cancel_leaves_interleaved_swaps_alone() {
        // SWAP(0,1); CP(1,2); SWAP(0,1): the CP touches Q1 in between.
        let mut b = MappedCircuitBuilder::new(Layout::identity(3, 3));
        b.push_swap_phys(p(0), p(1));
        b.push_2q_phys(GateKind::Cphase { k: 2 }, p(1), p(2));
        b.push_swap_phys(p(0), p(1));
        let mut mc = b.finish();
        let report = CancelAdjacentSwaps.run(&mut mc, &PassCtx::new()).unwrap();
        assert_eq!(report.rewrites, 0);
        assert_eq!(mc.ops().len(), 3);
    }

    #[test]
    fn merge_fuses_cphase_then_swap() {
        // CP(0,1); SWAP(0,1) fuses; the unrelated CP(1,2) stays.
        let mut b = MappedCircuitBuilder::new(Layout::identity(3, 3));
        b.push_2q_phys(GateKind::Cphase { k: 3 }, p(0), p(1));
        b.push_swap_phys(p(0), p(1));
        b.push_2q_phys(GateKind::Cphase { k: 2 }, p(1), p(2));
        let mut mc = b.finish();
        let report = MergeSwapCphase.run(&mut mc, &PassCtx::new()).unwrap();
        assert_eq!(report.rewrites, 1);
        assert_eq!(mc.ops().len(), 2);
        assert_eq!(mc.ops()[0].kind, GateKind::CphaseSwap { k: 3 });
        assert_eq!(mc.swap_count(), 0);
        assert_eq!(mc.cphase_count(), 2);
        CheckLayout.run(&mut mc, &PassCtx::new()).unwrap();
    }

    #[test]
    fn merge_fuses_swap_then_cphase() {
        let mut b = MappedCircuitBuilder::new(Layout::identity(2, 2));
        b.push_swap_phys(p(0), p(1));
        b.push_2q_phys(GateKind::Cphase { k: 2 }, p(1), p(0));
        let mut mc = b.finish();
        let report = MergeSwapCphase.run(&mut mc, &PassCtx::new()).unwrap();
        assert_eq!(report.rewrites, 1);
        assert_eq!(mc.ops().len(), 1);
        assert_eq!(mc.ops()[0].kind, GateKind::CphaseSwap { k: 2 });
        // The fused op keeps the SWAP's (pre-exchange) annotations.
        assert_eq!(
            mc.ops()[0].logical_pair().map(|(a, b)| (a.0, b.0)),
            Some((0, 1))
        );
        CheckLayout.run(&mut mc, &PassCtx::new()).unwrap();
    }

    #[test]
    fn merge_respects_intervening_ops() {
        // CP(0,1); H at Q1; SWAP(0,1): H breaks the window.
        let mut b = MappedCircuitBuilder::new(Layout::identity(2, 2));
        b.push_2q_phys(GateKind::Cphase { k: 2 }, p(0), p(1));
        b.push_1q_phys(GateKind::H, p(1));
        b.push_swap_phys(p(0), p(1));
        let mut mc = b.finish();
        let report = MergeSwapCphase.run(&mut mc, &PassCtx::new()).unwrap();
        assert_eq!(report.rewrites, 0);
        assert_eq!(mc.ops().len(), 3);
    }

    #[test]
    fn asap_layering_moves_parallel_ops_together() {
        // CP(0,1); SWAP(0,1); CP(2,3): the last op is independent and
        // belongs in layer 0, ahead of the SWAP.
        let mut b = MappedCircuitBuilder::new(Layout::identity(4, 4));
        b.push_2q_phys(GateKind::Cphase { k: 2 }, p(0), p(1));
        b.push_swap_phys(p(0), p(1));
        b.push_2q_phys(GateKind::Cphase { k: 2 }, p(2), p(3));
        let mut mc = b.finish();
        let before_pairs: Vec<_> = mc.ops().iter().map(|o| (o.p1, o.p2)).collect();
        let report = AsapLayering.run(&mut mc, &PassCtx::new()).unwrap();
        assert!(report.rewrites > 0);
        let after_pairs: Vec<_> = mc.ops().iter().map(|o| (o.p1, o.p2)).collect();
        assert_ne!(before_pairs, after_pairs);
        assert_eq!(mc.depth_uniform(), 2);
        CheckLayout.run(&mut mc, &PassCtx::new()).unwrap();
    }

    /// H(0); CP2(0,1); CPSWAP3(1,2); SWAP(0,1) — mixed rotation orders with
    /// a fused interaction and a trailing SWAP.
    fn with_mixed_rotations() -> MappedCircuit {
        let mut b = MappedCircuitBuilder::new(Layout::identity(3, 3));
        b.push_1q_phys(GateKind::H, p(0));
        b.push_2q_phys(GateKind::Cphase { k: 2 }, p(0), p(1));
        b.push_cphase_swap_phys(3, p(1), p(2));
        b.push_swap_phys(p(0), p(1));
        b.finish()
    }

    #[test]
    fn aqft_truncate_drops_high_orders_and_demotes_fused_ops() {
        let mut mc = with_mixed_rotations();
        let report = AqftTruncate { degree: 2 }
            .run(&mut mc, &PassCtx::new())
            .unwrap();
        assert_eq!(report.dropped_rotations, 1);
        assert_eq!(report.rewrites, 1);
        // The k=3 CphaseSwap lost its rotation but kept its SWAP half.
        assert_eq!(mc.ops()[2].kind, GateKind::Swap);
        assert_eq!(mc.cphase_count(), 1);
        // Layout replay is untouched by the demotion.
        CheckLayout.run(&mut mc, &PassCtx::new()).unwrap();
    }

    #[test]
    fn aqft_truncate_is_idempotent_and_noop_above_max_order() {
        let mut mc = with_mixed_rotations();
        let orig_final = mc.final_layout().clone();
        AqftTruncate { degree: 9 }
            .run(&mut mc, &PassCtx::new())
            .unwrap();
        assert_eq!(
            mc.ops(),
            with_mixed_rotations().ops(),
            "degree 9 is a no-op"
        );
        let mut once = with_mixed_rotations();
        AqftTruncate { degree: 2 }
            .run(&mut once, &PassCtx::new())
            .unwrap();
        let mut twice = once.clone();
        let second = AqftTruncate { degree: 2 }
            .run(&mut twice, &PassCtx::new())
            .unwrap();
        assert_eq!(second.dropped_rotations, 0);
        assert_eq!(once.ops(), twice.ops());
        assert_eq!(&orig_final, once.final_layout());
    }

    #[test]
    fn aqft_truncate_rejects_degree_zero() {
        let mut mc = with_mixed_rotations();
        let err = AqftTruncate { degree: 0 }
            .run(&mut mc, &PassCtx::new())
            .unwrap_err();
        assert!(err.reason.contains("degree 0"), "{err}");
    }

    #[test]
    fn prune_removes_stranded_trailing_chains() {
        // CP(0,1); SWAP(0,1); SWAP(1,2): both SWAPs route toward nothing.
        let mut b = MappedCircuitBuilder::new(Layout::identity(3, 3));
        b.push_2q_phys(GateKind::Cphase { k: 2 }, p(0), p(1));
        b.push_swap_phys(p(0), p(1));
        b.push_swap_phys(p(1), p(2));
        let mut mc = b.finish();
        let report = PruneDeadSwapChains.run(&mut mc, &PassCtx::new()).unwrap();
        assert_eq!(report.rewrites, 2);
        assert_eq!(mc.ops().len(), 1);
        assert_eq!(mc.final_layout(), &Layout::identity(3, 3));
        CheckLayout.run(&mut mc, &PassCtx::new()).unwrap();
    }

    #[test]
    fn prune_keeps_swaps_with_downstream_consumers() {
        // SWAP(0,1); CP(1,2): the SWAP decides which logical qubit the CP
        // touches — it is live routing even though CP doesn't touch Q0.
        let mut b = MappedCircuitBuilder::new(Layout::identity(3, 3));
        b.push_swap_phys(p(0), p(1));
        b.push_2q_phys(GateKind::Cphase { k: 2 }, p(1), p(2));
        let mut mc = b.finish();
        let report = PruneDeadSwapChains.run(&mut mc, &PassCtx::new()).unwrap();
        assert_eq!(report.rewrites, 0);
        assert_eq!(mc.ops().len(), 2);
        CheckLayout.run(&mut mc, &PassCtx::new()).unwrap();
    }

    #[test]
    fn truncate_then_cleanups_compose() {
        // The canonical AQFT tail: truncate, cancel, prune, check.
        let mut b = MappedCircuitBuilder::new(Layout::identity(3, 3));
        b.push_1q_phys(GateKind::H, p(0));
        b.push_2q_phys(GateKind::Cphase { k: 2 }, p(0), p(1));
        b.push_swap_phys(p(0), p(1));
        b.push_2q_phys(GateKind::Cphase { k: 3 }, p(1), p(2)); // truncated
        b.push_swap_phys(p(1), p(2)); // stranded once the k=3 CP is gone
        b.push_1q_phys(GateKind::H, p(0));
        let mut mc = b.finish();
        let pm = PassManager::new()
            .with_pass(Box::new(AqftTruncate { degree: 2 }))
            .with_pass(Box::new(CancelAdjacentSwaps))
            .with_pass(Box::new(PruneDeadSwapChains))
            .with_pass(Box::new(CheckLayout));
        let reports = pm.run(&mut mc, &PassCtx::new()).unwrap();
        assert_eq!(reports[0].dropped_rotations, 1);
        assert_eq!(reports[2].rewrites, 1, "the stranded SWAP(1,2) is pruned");
        // SWAP(0,1) survives: H(q1) at Q0 still consumes its permutation.
        assert_eq!(mc.swap_count(), 1);
        assert_eq!(mc.cphase_count(), 1);
    }

    #[test]
    fn check_layout_rejects_broken_annotations() {
        let mut mc = with_redundant_swaps();
        let mut ops = mc.ops().to_vec();
        ops[1].l1 = Some(crate::gate::LogicalQubit(2)); // lie
        mc.set_ops(ops);
        let err = CheckLayout.run(&mut mc, &PassCtx::new()).unwrap_err();
        assert!(err.reason.contains("annotation"), "{err}");
    }

    #[test]
    fn check_layout_rejects_broken_final_layout() {
        let mut mc = with_redundant_swaps();
        let mut ops = mc.ops().to_vec();
        ops.push(PhysOp {
            kind: GateKind::Swap,
            p1: p(0),
            p2: Some(p(1)),
            l1: mc.final_layout().logical(p(0)),
            l2: mc.final_layout().logical(p(1)),
        });
        mc.set_ops(ops);
        let err = CheckLayout.run(&mut mc, &PassCtx::new()).unwrap_err();
        assert!(err.reason.contains("final layout"), "{err}");
    }

    #[test]
    fn check_layout_uses_adjacency_oracle() {
        let mut b = MappedCircuitBuilder::new(Layout::identity(3, 3));
        b.push_2q_phys(GateKind::Cphase { k: 2 }, p(0), p(2));
        let mut mc = b.finish();
        // Without an oracle the op passes; a line oracle rejects it.
        CheckLayout.run(&mut mc, &PassCtx::new()).unwrap();
        let line = |a: PhysicalQubit, b: PhysicalQubit| a.0.abs_diff(b.0) == 1;
        let err = CheckLayout
            .run(&mut mc, &PassCtx::with_adjacency(&line))
            .unwrap_err();
        assert!(err.reason.contains("non-adjacent"), "{err}");
    }

    #[test]
    fn manager_times_and_diffs_every_pass() {
        let mut mc = with_redundant_swaps();
        let pm = PassManager::new()
            .with_pass(Box::new(CancelAdjacentSwaps))
            .with_pass(Box::new(MergeSwapCphase))
            .with_pass(Box::new(CheckLayout));
        let reports = pm.run(&mut mc, &PassCtx::new()).unwrap();
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].ops_before, 5);
        assert_eq!(reports[0].ops_after, 3);
        assert_eq!(reports[0].swaps_before, 2);
        assert_eq!(reports[0].swaps_after, 0);
        assert!(reports.iter().all(|r| r.wall_s >= 0.0));
        assert!(!reports[2].changed());
        assert_eq!(
            pm.names(),
            vec!["cancel-adjacent-swaps", "merge-swap-cphase", "check-layout"]
        );
    }

    #[test]
    fn named_resolves_every_registered_pass() {
        for name in PASS_NAMES {
            let p = named(name).unwrap_or_else(|| panic!("{name} must resolve"));
            assert_eq!(p.name(), *name);
            assert!(!p.description().is_empty());
        }
        assert!(named("constant-folding").is_none());
        // The parameterized truncation pass resolves with a valid degree...
        let t = named("aqft-truncate(3)").expect("parameterized form must resolve");
        assert_eq!(t.name(), "aqft-truncate");
        // ...and rejects missing, zero, or malformed degrees.
        for bad in [
            "aqft-truncate",
            "aqft-truncate()",
            "aqft-truncate(0)",
            "aqft-truncate(x)",
        ] {
            assert!(named(bad).is_none(), "{bad} must not resolve");
        }
    }

    #[test]
    fn pass_report_roundtrips_through_serde() {
        let mut mc = with_redundant_swaps();
        let pm = PassManager::new().with_pass(Box::new(CancelAdjacentSwaps));
        let reports = pm.run(&mut mc, &PassCtx::new()).unwrap();
        let json = serde_json::to_string(&reports).unwrap();
        let back: Vec<PassReport> = serde_json::from_str(&json).unwrap();
        assert_eq!(reports, back);
    }
}
