//! Link latency classes for heterogeneous backends (§2.3).
//!
//! On NISQ devices every link executes every two-qubit gate in one cycle. On
//! the lattice-surgery FT backend, links are heterogeneous: diagonal (green)
//! links do a SWAP in depth 2 using two ancillas at once, while horizontal /
//! vertical (black) links are CNOT-only — a SWAP costs 3 CNOTs of depth 2
//! each, i.e. depth 6 — and a plain two-qubit gate costs depth 2 everywhere.

use crate::gate::GateKind;
use serde::{Deserialize, Serialize};

/// The latency class of a coupling-graph link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkClass {
    /// NISQ link: every gate (1- or 2-qubit, including SWAP) takes 1 cycle.
    Uniform,
    /// Lattice-surgery *fast* link (green/diagonal): two-qubit gates depth 2,
    /// SWAP depth 2 (two ancillas used at once).
    FastSwap,
    /// Lattice-surgery *slow* link (black, CNOT-only): two-qubit gates depth
    /// 2, SWAP = 3 CNOTs = depth 6.
    CnotOnly,
}

impl LinkClass {
    /// Cycles needed to run `kind` across this link.
    ///
    /// FT accounting follows the paper's complexity arithmetic (§6): a
    /// CPHASE interaction is a single lattice-surgery merge (1 cycle), a
    /// CNOT has depth 2 \[5\], a fast (diagonal) SWAP uses two ancillas at
    /// once for depth 2, and a CNOT-only SWAP is 3 CNOTs = depth 6. The
    /// paper's per-stage costs — QFT-IE = 3m (1-cycle interaction + 2-cycle
    /// swap per movement step), mixed 2×N = 6m, unit SWAP = 6 — are exactly
    /// these constants.
    #[inline]
    pub fn latency(self, kind: GateKind) -> u64 {
        match self {
            LinkClass::Uniform => 1,
            // A fused CPHASE+SWAP costs what its SWAP half costs: the merge
            // saves the separate interaction cycle, never the movement.
            LinkClass::FastSwap => match kind {
                GateKind::Swap | GateKind::CphaseSwap { .. } => 2,
                GateKind::Cnot => 2,
                _ => 1,
            },
            LinkClass::CnotOnly => match kind {
                GateKind::Swap | GateKind::CphaseSwap { .. } => 6,
                GateKind::Cnot => 2,
                _ => 1,
            },
        }
    }

    /// Latency of a single-qubit gate on a device whose links are of this
    /// class (1 cycle on NISQ; counted as 1 on FT as well, matching the
    /// paper's cycle accounting that is dominated by two-qubit layers).
    #[inline]
    pub fn latency_1q(self) -> u64 {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_everything_is_one() {
        assert_eq!(LinkClass::Uniform.latency(GateKind::Swap), 1);
        assert_eq!(LinkClass::Uniform.latency(GateKind::Cphase { k: 2 }), 1);
    }

    #[test]
    fn ft_swap_costs_match_paper() {
        assert_eq!(LinkClass::FastSwap.latency(GateKind::Swap), 2);
        assert_eq!(LinkClass::CnotOnly.latency(GateKind::Swap), 6);
        assert_eq!(LinkClass::CnotOnly.latency(GateKind::Cnot), 2);
        assert_eq!(LinkClass::FastSwap.latency(GateKind::Cphase { k: 3 }), 1);
        assert_eq!(LinkClass::CnotOnly.latency(GateKind::Cphase { k: 2 }), 1);
    }
}
