//! OpenQASM 2.0 export for logical and mapped circuits.
//!
//! Exports use `cu1` for controlled-phase rotations (the Qiskit-compatible
//! spelling) with exact dyadic angles rendered as `pi/2^(k-1)` expressions.

use crate::circuit::{Circuit, MappedCircuit};
use crate::gate::GateKind;
use std::fmt::Write as _;

fn angle_expr(k: u32) -> String {
    // R_k has phase 2*pi / 2^k = pi / 2^(k-1).
    match k {
        0 => "2*pi".to_string(),
        1 => "pi".to_string(),
        k => format!("pi/{}", 1u64 << (k - 1).min(62)),
    }
}

fn emit_gate(out: &mut String, kind: GateKind, a: usize, b: Option<usize>) {
    match (kind, b) {
        (GateKind::H, _) => writeln!(out, "h q[{a}];").unwrap(),
        (GateKind::X, _) => writeln!(out, "x q[{a}];").unwrap(),
        (GateKind::Rz { k }, _) => writeln!(out, "rz({}) q[{a}];", angle_expr(k)).unwrap(),
        (GateKind::Cphase { k }, Some(b)) => {
            writeln!(out, "cu1({}) q[{b}],q[{a}];", angle_expr(k)).unwrap()
        }
        (GateKind::Swap, Some(b)) => writeln!(out, "swap q[{a}],q[{b}];").unwrap(),
        // OpenQASM 2.0 has no fused CPHASE+SWAP primitive: decompose in
        // the order replay semantics define (rotation, then exchange).
        (GateKind::CphaseSwap { k }, Some(b)) => {
            writeln!(out, "cu1({}) q[{b}],q[{a}];", angle_expr(k)).unwrap();
            writeln!(out, "swap q[{a}],q[{b}];").unwrap();
        }
        (GateKind::Cnot, Some(b)) => writeln!(out, "cx q[{a}],q[{b}];").unwrap(),
        _ => unreachable!("two-qubit gate without second operand"),
    }
}

fn header(n: usize) -> String {
    format!("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[{n}];\n")
}

/// Renders a logical circuit as OpenQASM 2.0.
pub fn circuit_to_qasm(c: &Circuit) -> String {
    let mut out = header(c.n_qubits());
    for g in c.gates() {
        emit_gate(&mut out, g.kind, g.a.index(), g.b.map(|q| q.index()));
    }
    out
}

/// Renders a mapped circuit as OpenQASM 2.0 over the *physical* register.
///
/// The initial layout is recorded as a comment line per logical qubit so the
/// output is self-describing.
pub fn mapped_to_qasm(mc: &MappedCircuit) -> String {
    let mut out = header(mc.n_physical());
    for l in 0..mc.n_logical() as u32 {
        let p = mc.initial_layout().phys(crate::gate::LogicalQubit(l));
        writeln!(out, "// initial: q{l} -> Q{}", p.0).unwrap();
    }
    for op in mc.ops() {
        emit_gate(&mut out, op.kind, op.p1.index(), op.p2.map(|p| p.index()));
    }
    out
}

/// Errors from [`parse_circuit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QasmError {
    /// A statement could not be parsed.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// No `qreg` declaration found before the first gate.
    MissingRegister,
}

impl std::fmt::Display for QasmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QasmError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            QasmError::MissingRegister => write!(f, "missing qreg declaration"),
        }
    }
}

impl std::error::Error for QasmError {}

fn parse_operands(rest: &str) -> Option<Vec<usize>> {
    rest.trim_end_matches(';')
        .split(',')
        .map(|t| {
            let t = t.trim();
            t.strip_prefix("q[")?
                .strip_suffix(']')?
                .parse::<usize>()
                .ok()
        })
        .collect()
}

fn parse_dyadic_angle(expr: &str) -> Option<u32> {
    // Accepts "pi", "pi/2", "pi/16", ...: R_k with k = 1 + log2(divisor).
    let expr = expr.trim();
    if expr == "pi" {
        return Some(1);
    }
    let d: u64 = expr.strip_prefix("pi/")?.parse().ok()?;
    d.is_power_of_two().then(|| 1 + d.trailing_zeros())
}

/// Parses the OpenQASM 2.0 subset this crate emits (`h`, `x`, `rz`, `cu1`
/// with dyadic angles, `swap`, `cx`) back into a logical [`Circuit`].
///
/// Comment lines and the header statements are skipped; any other
/// construct is a [`QasmError::Syntax`].
pub fn parse_circuit(text: &str) -> Result<Circuit, QasmError> {
    let mut n: Option<usize> = None;
    let mut gates: Vec<crate::gate::Gate> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = lineno + 1;
        if line.is_empty()
            || line.starts_with("//")
            || line.starts_with("OPENQASM")
            || line.starts_with("include")
        {
            continue;
        }
        let err = |message: &str| QasmError::Syntax {
            line: lineno,
            message: message.into(),
        };
        if let Some(rest) = line.strip_prefix("qreg q[") {
            let size = rest
                .strip_suffix("];")
                .and_then(|s| s.parse::<usize>().ok())
                .ok_or_else(|| err("bad qreg"))?;
            n = Some(size);
            continue;
        }
        let (op, rest) = line
            .split_once(' ')
            .ok_or_else(|| err("missing operands"))?;
        let operands = parse_operands(rest).ok_or_else(|| err("bad operand list"))?;
        use crate::gate::{Gate, GateKind, LogicalQubit};
        let q = |i: usize| LogicalQubit(operands[i] as u32);
        let gate = match (op, operands.len()) {
            ("h", 1) => Gate::one(GateKind::H, q(0)),
            ("x", 1) => Gate::one(GateKind::X, q(0)),
            ("swap", 2) => Gate::two(GateKind::Swap, q(0), q(1)),
            ("cx", 2) => Gate::two(GateKind::Cnot, q(0), q(1)),
            _ if op.starts_with("rz(") && operands.len() == 1 => {
                let k = parse_dyadic_angle(op.strip_prefix("rz(").unwrap().trim_end_matches(')'))
                    .ok_or_else(|| err("non-dyadic rz angle"))?;
                Gate::one(GateKind::Rz { k }, q(0))
            }
            _ if op.starts_with("cu1(") && operands.len() == 2 => {
                let k = parse_dyadic_angle(op.strip_prefix("cu1(").unwrap().trim_end_matches(')'))
                    .ok_or_else(|| err("non-dyadic cu1 angle"))?;
                // Export order is (control, target): invert it back.
                Gate::two(GateKind::Cphase { k }, q(1), q(0))
            }
            _ => return Err(err(&format!("unsupported statement `{op}`"))),
        };
        gates.push(gate);
    }
    let n = n.ok_or(QasmError::MissingRegister)?;
    let mut c = Circuit::new(n);
    for g in gates {
        c.push(g);
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;
    use crate::qft::qft_circuit;

    #[test]
    fn roundtrip_qft_circuit() {
        for n in [1usize, 2, 5, 9] {
            let c = qft_circuit(n);
            let text = circuit_to_qasm(&c);
            let back = parse_circuit(&text).unwrap_or_else(|e| panic!("n={n}: {e}"));
            assert_eq!(&c, &back, "n={n}");
        }
    }

    #[test]
    fn roundtrip_mixed_gates() {
        let mut c = Circuit::new(3);
        c.push(Gate::h(0));
        c.push(Gate::swap(0, 2));
        c.push(Gate::two(
            crate::gate::GateKind::Cnot,
            crate::gate::LogicalQubit(1),
            crate::gate::LogicalQubit(2),
        ));
        c.push(Gate::cphase(4, 1, 0));
        let back = parse_circuit(&circuit_to_qasm(&c)).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(
            parse_circuit("OPENQASM 2.0;\nqreg q[2];\nfrobnicate q[0];"),
            Err(QasmError::Syntax { line: 3, .. })
        ));
        assert_eq!(parse_circuit("h q[0];"), Err(QasmError::MissingRegister));
    }

    #[test]
    fn parse_dyadic_angles() {
        assert_eq!(parse_dyadic_angle("pi"), Some(1));
        assert_eq!(parse_dyadic_angle("pi/8"), Some(4));
        assert_eq!(parse_dyadic_angle("pi/3"), None);
    }

    #[test]
    fn qasm_header_and_gates() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::cphase(2, 0, 1));
        let q = circuit_to_qasm(&c);
        assert!(q.starts_with("OPENQASM 2.0;"));
        assert!(q.contains("qreg q[2];"));
        assert!(q.contains("h q[0];"));
        assert!(q.contains("cu1(pi/2) q[1],q[0];"));
    }

    #[test]
    fn qft_qasm_has_all_gates() {
        let c = qft_circuit(6);
        let q = circuit_to_qasm(&c);
        let lines = q.lines().filter(|l| l.ends_with(';')).count();
        // 3 header statements + gates.
        assert_eq!(lines, 3 + c.len());
    }

    #[test]
    fn angle_expressions_are_dyadic() {
        assert_eq!(angle_expr(1), "pi");
        assert_eq!(angle_expr(2), "pi/2");
        assert_eq!(angle_expr(5), "pi/16");
    }
}
