//! Dependency DAGs over logical circuits, with the paper's Type I / Type II
//! dependence model.
//!
//! §3.1 of the paper classifies QFT dependences:
//!
//! * **Type I** (relaxable): two `CPHASE` gates sharing a control or target.
//!   `CPHASE` gates are diagonal, hence mutually commute — these edges can be
//!   dropped.
//! * **Type II** (essential): one gate's control is another's target. In the
//!   QFT this is always mediated by the `H` gate (`G(q_j, q_j)` in the
//!   paper's notation), which does not commute with `CPHASE`.
//!
//! [`DagMode::Strict`] keeps both edge classes (the conventional circuit
//! DAG); [`DagMode::Relaxed`] keeps only edges where the two gates genuinely
//! fail to commute — exactly the Type-II-only relaxation.

use crate::circuit::Circuit;
use crate::gate::Gate;
use serde::{Deserialize, Serialize};

/// Which dependences to encode; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DagMode {
    /// Conventional per-qubit program order (Type I + Type II).
    Strict,
    /// Commutation-aware order (Type II only): overlapping diagonal gates are
    /// unordered.
    Relaxed,
}

/// A dependency DAG over a gate list.
#[derive(Debug, Clone)]
pub struct CircuitDag {
    gates: Vec<Gate>,
    succs: Vec<Vec<u32>>,
    indeg: Vec<u32>,
    n_qubits: usize,
    mode: DagMode,
}

impl CircuitDag {
    /// Builds the DAG for `circuit` under `mode`.
    pub fn build(circuit: &Circuit, mode: DagMode) -> Self {
        let gates = circuit.gates().to_vec();
        let n = circuit.n_qubits();
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); gates.len()];
        let mut indeg: Vec<u32> = vec![0; gates.len()];

        match mode {
            DagMode::Strict => {
                // Edge from the previous gate on each operand qubit.
                let mut last: Vec<Option<u32>> = vec![None; n];
                for (i, g) in gates.iter().enumerate() {
                    let mut preds: Vec<u32> = g.qubits().filter_map(|q| last[q.index()]).collect();
                    preds.sort_unstable();
                    preds.dedup();
                    for p in preds {
                        succs[p as usize].push(i as u32);
                        indeg[i] += 1;
                    }
                    for q in g.qubits() {
                        last[q.index()] = Some(i as u32);
                    }
                }
            }
            DagMode::Relaxed => {
                // Per qubit: the last non-diagonal gate acts as a barrier;
                // diagonal gates between consecutive barriers are mutually
                // unordered (they commute).
                let mut last_barrier: Vec<Option<u32>> = vec![None; n];
                let mut diag_since: Vec<Vec<u32>> = vec![Vec::new(); n];
                for (i, g) in gates.iter().enumerate() {
                    let mut preds: Vec<u32> = Vec::new();
                    if g.kind.is_diagonal() {
                        for q in g.qubits() {
                            if let Some(b) = last_barrier[q.index()] {
                                preds.push(b);
                            }
                            diag_since[q.index()].push(i as u32);
                        }
                    } else {
                        for q in g.qubits() {
                            let qi = q.index();
                            if diag_since[qi].is_empty() {
                                if let Some(b) = last_barrier[qi] {
                                    preds.push(b);
                                }
                            } else {
                                preds.append(&mut diag_since[qi]);
                            }
                            last_barrier[qi] = Some(i as u32);
                        }
                    }
                    preds.sort_unstable();
                    preds.dedup();
                    for p in preds {
                        succs[p as usize].push(i as u32);
                        indeg[i] += 1;
                    }
                }
            }
        }

        CircuitDag {
            gates,
            succs,
            indeg,
            n_qubits: n,
            mode,
        }
    }

    /// The gate list underlying the DAG (node `i` is `gates()[i]`).
    #[inline]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// True if the DAG is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Number of logical qubits.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The mode this DAG was built under.
    #[inline]
    pub fn mode(&self) -> DagMode {
        self.mode
    }

    /// Successors of node `i`.
    #[inline]
    pub fn succs(&self, i: u32) -> &[u32] {
        &self.succs[i as usize]
    }

    /// Total dependence-edge count.
    pub fn edge_count(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }

    /// Starts a traversal state with all indegrees reset.
    pub fn frontier(&self) -> Frontier {
        let mut front = Vec::new();
        for (i, &d) in self.indeg.iter().enumerate() {
            if d == 0 {
                front.push(i as u32);
            }
        }
        Frontier {
            indeg: self.indeg.clone(),
            front,
            executed: 0,
        }
    }

    /// Checks that `order` is a permutation of all nodes consistent with the
    /// DAG edges. Used by tests and the symbolic verifier.
    pub fn is_valid_order(&self, order: &[u32]) -> bool {
        if order.len() != self.gates.len() {
            return false;
        }
        let mut pos = vec![usize::MAX; self.gates.len()];
        for (t, &g) in order.iter().enumerate() {
            if (g as usize) >= pos.len() || pos[g as usize] != usize::MAX {
                return false;
            }
            pos[g as usize] = t;
        }
        for (i, ss) in self.succs.iter().enumerate() {
            for &s in ss {
                if pos[i] >= pos[s as usize] {
                    return false;
                }
            }
        }
        true
    }
}

/// Mutable traversal state over a [`CircuitDag`]: the classic
/// front-layer/execute loop used by SABRE and by schedulers.
#[derive(Debug, Clone)]
pub struct Frontier {
    indeg: Vec<u32>,
    front: Vec<u32>,
    executed: usize,
}

impl Frontier {
    /// Nodes with all dependences satisfied, not yet executed.
    #[inline]
    pub fn front(&self) -> &[u32] {
        &self.front
    }

    /// True when every node has been executed.
    #[inline]
    pub fn is_done(&self) -> bool {
        self.front.is_empty()
    }

    /// How many nodes have been executed.
    #[inline]
    pub fn executed(&self) -> usize {
        self.executed
    }

    /// Executes a front node, returning the newly-ready nodes.
    ///
    /// # Panics
    /// Panics if `node` is not currently in the front.
    pub fn execute(&mut self, dag: &CircuitDag, node: u32) -> Vec<u32> {
        let idx = self
            .front
            .iter()
            .position(|&x| x == node)
            .expect("node not in front layer");
        self.front.swap_remove(idx);
        self.executed += 1;
        let mut ready = Vec::new();
        for &s in dag.succs(node) {
            let d = &mut self.indeg[s as usize];
            *d -= 1;
            if *d == 0 {
                ready.push(s);
                self.front.push(s);
            }
        }
        ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    fn qft3() -> Circuit {
        // Textbook QFT on 3 qubits.
        let mut c = Circuit::new(3);
        c.push(Gate::h(0));
        c.push(Gate::cphase(2, 0, 1));
        c.push(Gate::cphase(3, 0, 2));
        c.push(Gate::h(1));
        c.push(Gate::cphase(2, 1, 2));
        c.push(Gate::h(2));
        c
    }

    #[test]
    fn strict_dag_chains_per_qubit() {
        let dag = CircuitDag::build(&qft3(), DagMode::Strict);
        // H(0) -> CP(0,1) -> CP(0,2) -> H(1)? No: H(1) depends on CP(0,1) via q1.
        // Check edges: node 1 (CP(0,1)) must precede node 2 (CP(0,2)) strictly.
        assert!(dag.succs(1).contains(&2));
        let f = dag.frontier();
        assert_eq!(f.front(), &[0]); // only H(0) initially ready
    }

    #[test]
    fn relaxed_dag_drops_type_i_edges() {
        let dag = CircuitDag::build(&qft3(), DagMode::Relaxed);
        // CP(0,1) and CP(0,2) share q0 but commute: no edge between them.
        assert!(!dag.succs(1).contains(&2));
        // After H(0), both CPHASEs on q0 become ready... CP(0,2) also needs
        // nothing on q2 (no earlier barrier), CP(1,2)? needs nothing on q2
        // but q1 has no barrier before it either -- but it IS ordered after
        // H(1) which is ordered after CP(0,1). Initial front: H(0) only?
        // CP(0,1): pred H(0). CP(0,2): pred H(0). CP(1,2): preds = barriers?
        // q1 barrier none yet at build time for node 4? Node 3 is H(1), a
        // barrier on q1 built from diag_since = [CP(0,1)]. Node 4 CP(1,2)
        // has pred H(1) via q1. So initial front = {H(0)}.
        let f = dag.frontier();
        assert_eq!(f.front(), &[0]);
        // Note: on the textbook QFT the *edge count* of strict and relaxed
        // DAGs coincides (n(n-1) each); what the relaxation removes is
        // ordering in the transitive closure. Witness: an order that swaps
        // the two commuting CPHASEs is relaxed-valid but strict-invalid.
        let strict = CircuitDag::build(&qft3(), DagMode::Strict);
        let reordered = [0u32, 2, 1, 3, 4, 5];
        assert!(dag.is_valid_order(&reordered));
        assert!(!strict.is_valid_order(&reordered));
    }

    #[test]
    fn relaxed_preserves_type_ii() {
        let dag = CircuitDag::build(&qft3(), DagMode::Relaxed);
        // H(1) (node 3) must still follow CP(0,1) (node 1) and precede
        // CP(1,2) (node 4).
        assert!(dag.succs(1).contains(&3));
        assert!(dag.succs(3).contains(&4));
    }

    #[test]
    fn frontier_executes_in_waves() {
        let dag = CircuitDag::build(&qft3(), DagMode::Relaxed);
        let mut f = dag.frontier();
        let ready = f.execute(&dag, 0); // H(0)
        let mut r = ready.clone();
        r.sort_unstable();
        assert_eq!(r, vec![1, 2]); // both CPHASEs on q0 unlock together
        f.execute(&dag, 1);
        f.execute(&dag, 2);
        assert_eq!(f.front(), &[3]);
        f.execute(&dag, 3);
        f.execute(&dag, 4);
        f.execute(&dag, 5);
        assert!(f.is_done());
        assert_eq!(f.executed(), 6);
    }

    #[test]
    fn valid_order_checker() {
        let dag = CircuitDag::build(&qft3(), DagMode::Strict);
        assert!(dag.is_valid_order(&[0, 1, 2, 3, 4, 5]));
        assert!(!dag.is_valid_order(&[1, 0, 2, 3, 4, 5])); // CP before its H
        assert!(!dag.is_valid_order(&[0, 1, 2, 3, 4])); // missing node
                                                        // Relaxed allows exchanging the two commuting CPHASEs.
        let relaxed = CircuitDag::build(&qft3(), DagMode::Relaxed);
        assert!(relaxed.is_valid_order(&[0, 2, 1, 3, 4, 5]));
        assert!(!CircuitDag::build(&qft3(), DagMode::Strict).is_valid_order(&[0, 2, 1, 3, 4, 5]));
    }

    #[test]
    fn swap_is_a_barrier_in_relaxed_mode() {
        let mut c = Circuit::new(3);
        c.push(Gate::cphase(2, 0, 1));
        c.push(Gate::swap(1, 2));
        c.push(Gate::cphase(2, 0, 1));
        let dag = CircuitDag::build(&c, DagMode::Relaxed);
        // CP -> SWAP -> CP must be fully ordered (SWAP is not diagonal).
        assert!(dag.succs(0).contains(&1));
        assert!(dag.succs(1).contains(&2));
    }
}
