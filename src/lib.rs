//! # qft-kernels — linear-depth QFT compilation for NISQ and FT backends
//!
//! A full reproduction of "Optimizing Quantum Fourier Transformation (QFT)
//! Kernels for Modern NISQ and FT Architectures" (SC 2024): analytical
//! (search-free) qubit mapping that produces linear-depth hardware QFT
//! circuits on IBM heavy-hex, Google Sycamore, and surface-code lattice
//! surgery, plus the baselines, simulator, and program-synthesis tooling
//! the paper's evaluation depends on.
//!
//! Crate map:
//! * [`ir`] — circuit IR, dependency DAGs (Type I/II), metrics, QASM;
//! * [`arch`] — coupling-graph models of every backend;
//! * [`sim`] — state-vector simulator + scalable symbolic verifier;
//! * [`synth`] — enumerative SKETCH-substitute for movement patterns;
//! * [`baselines`] — SABRE, exact-optimal A* (SATMAP substitute), LNN path;
//! * [`core`] — the paper's compilers and the [`core::Backend`] façade.
//!
//! ## Quickstart
//!
//! ```
//! use qft_kernels::core::Backend;
//! use qft_kernels::sim::symbolic::verify_qft_mapping;
//!
//! let backend = Backend::HeavyHexGroups(2); // 10-qubit heavy-hex device
//! let graph = backend.graph();
//! let (circuit, metrics) = backend.compile_qft_with_metrics();
//! verify_qft_mapping(&circuit, &graph).unwrap();
//! assert_eq!(metrics.cphases, 10 * 9 / 2);
//! ```

#![warn(missing_docs)]

pub use qft_arch as arch;
pub use qft_baselines as baselines;
pub use qft_core as core;
pub use qft_ir as ir;
pub use qft_sim as sim;
pub use qft_synth as synth;
