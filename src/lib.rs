//! # qft-kernels — linear-depth QFT compilation for NISQ and FT backends
//!
//! A full reproduction of "Optimizing Quantum Fourier Transformation (QFT)
//! Kernels for Modern NISQ and FT Architectures" (SC 2024): analytical
//! (search-free) qubit mapping that produces linear-depth hardware QFT
//! circuits on IBM heavy-hex, Google Sycamore, and surface-code lattice
//! surgery, plus the baselines, simulator, and program-synthesis tooling
//! the paper's evaluation depends on.
//!
//! Crate map:
//! * [`ir`] — circuit IR, dependency DAGs (Type I/II), metrics, QASM, and
//!   the pass subsystem ([`PassManager`] + shared peephole/verify passes);
//! * [`arch`] — coupling-graph models of every backend;
//! * [`sim`] — fast state-vector engine (branch-free kernels, lazy
//!   SWAPs, batched multi-state verification with a retained `naive`
//!   differential oracle) + scalable symbolic verifier;
//! * [`synth`] — enumerative SKETCH-substitute for movement patterns;
//! * [`baselines`] — SABRE, exact-optimal A* (SATMAP substitute), LNN path;
//! * [`core`] — the paper's compilers and the pipeline API ([`Target`],
//!   [`QftCompiler`], [`CompileOptions`] → [`CompileResult`]);
//! * [`serve`] — the batched/concurrent compile service: JSON
//!   [`CompileRequest`]/[`CompileResponse`] types, a [`CompileService`]
//!   with a bounded worker pool and a keyed LRU result cache, the TCP
//!   front end ([`NetServer`]/[`NetClient`]), a consistent-hash
//!   [`Router`] for multi-backend scale-out, and the process-wide shared
//!   registry behind [`registry()`].
//!
//! Every compiler — the four analytical mappers *and* the three baselines —
//! implements the same [`QftCompiler`] trait and is resolvable by name
//! through [`registry()`], so harnesses drive them interchangeably. Each
//! compile runs construct → optimize → verify: the compiler's construct
//! stage emits a raw schedule, then a shared [`PassManager`] tail (chosen
//! by [`CompileOptions::opt_level`] and `extra_passes`) applies the
//! peephole/scheduling/verify passes, and the per-pass breakdown lands in
//! [`CompileResult::passes`].
//!
//! ## Quickstart
//!
//! ```
//! use qft_kernels::{registry, CompileOptions, Target, VerifyLevel};
//!
//! // A validated target: 2 heavy-hex groups = a 10-qubit device.
//! let target = Target::heavy_hex_groups(2).unwrap();
//!
//! // Resolve any registered compiler by name and run the same pipeline.
//! let opts = CompileOptions { verify: VerifyLevel::Symbolic, ..Default::default() };
//! let result = registry().get("heavyhex").unwrap().compile(&target, &opts).unwrap();
//!
//! assert_eq!(result.metrics.cphases, 10 * 9 / 2);
//! assert!(result.qasm().starts_with("OPENQASM 2.0;"));
//!
//! // The baselines answer to the same API:
//! let sabre = registry().get("sabre").unwrap().compile(&target, &opts).unwrap();
//! assert!(result.metrics.depth < sabre.metrics.depth);
//! ```

#![warn(missing_docs)]

pub use qft_arch as arch;
pub use qft_baselines as baselines;
pub use qft_core as core;
pub use qft_ir as ir;
pub use qft_serve as serve;
pub use qft_sim as sim;
pub use qft_synth as synth;

pub use qft_core::{
    pass_manager_for, CompileError, CompileOptions, CompileResult, IeMode, LatencyModel,
    QftCompiler, Registry, Target, TargetSpec, VerifyLevel,
};
pub use qft_ir::passes::{Pass, PassCtx, PassError, PassManager, PassReport};
pub use qft_serve::{
    Backpressure, ClientConfig, CompileRequest, CompileResponse, CompileService, NetClient,
    NetServer, PoolClient, RetryPolicy, Routed, Router, RouterConfig, ServeError, ServeStats,
    ServerConfig, StreamSession, Ticket,
};

/// The process-wide compiler registry: the paper's four analytical mappers
/// (`lnn`, `sycamore`, `heavyhex`, `lattice`) plus the three baselines
/// (`sabre`, `optimal`, `lnn-path`) — one shared instance behind a
/// `OnceLock` ([`qft_serve::shared_registry`]), never rebuilt per call, so
/// every caller (bench bins, the serve layer, tests) resolves through the
/// same compilers.
///
/// For a custom set (overrides, extra compilers), build a
/// [`Registry`] directly: `Registry::with_core()` +
/// [`qft_baselines::register_baselines`] + your own
/// [`Registry::register`] calls.
pub fn registry() -> &'static Registry {
    qft_serve::shared_registry()
}

/// Names of every registered compiler, in registration order.
pub fn available_compilers() -> Vec<&'static str> {
    registry().names()
}
