/root/repo/target/debug/examples/partitioned_qft-ac6bc6bad4b8b98c.d: examples/partitioned_qft.rs

/root/repo/target/debug/examples/partitioned_qft-ac6bc6bad4b8b98c: examples/partitioned_qft.rs

examples/partitioned_qft.rs:
