/root/repo/target/debug/examples/ft_scale-8b0674703aa40675.d: examples/ft_scale.rs Cargo.toml

/root/repo/target/debug/examples/libft_scale-8b0674703aa40675.rmeta: examples/ft_scale.rs Cargo.toml

examples/ft_scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
