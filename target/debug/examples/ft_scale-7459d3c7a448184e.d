/root/repo/target/debug/examples/ft_scale-7459d3c7a448184e.d: examples/ft_scale.rs

/root/repo/target/debug/examples/libft_scale-7459d3c7a448184e.rmeta: examples/ft_scale.rs

examples/ft_scale.rs:
