/root/repo/target/debug/examples/qpe_heavyhex-75280ce6ae1c883e.d: examples/qpe_heavyhex.rs

/root/repo/target/debug/examples/libqpe_heavyhex-75280ce6ae1c883e.rmeta: examples/qpe_heavyhex.rs

examples/qpe_heavyhex.rs:
