/root/repo/target/debug/examples/quickstart-07d862b3440d7f9d.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-07d862b3440d7f9d.rmeta: examples/quickstart.rs

examples/quickstart.rs:
