/root/repo/target/debug/examples/partitioned_qft-affc0c2943417680.d: examples/partitioned_qft.rs

/root/repo/target/debug/examples/partitioned_qft-affc0c2943417680: examples/partitioned_qft.rs

examples/partitioned_qft.rs:
