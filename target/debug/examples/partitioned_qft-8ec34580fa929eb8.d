/root/repo/target/debug/examples/partitioned_qft-8ec34580fa929eb8.d: examples/partitioned_qft.rs

/root/repo/target/debug/examples/libpartitioned_qft-8ec34580fa929eb8.rmeta: examples/partitioned_qft.rs

examples/partitioned_qft.rs:
