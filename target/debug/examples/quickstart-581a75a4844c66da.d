/root/repo/target/debug/examples/quickstart-581a75a4844c66da.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-581a75a4844c66da: examples/quickstart.rs

examples/quickstart.rs:
