/root/repo/target/debug/examples/qpe_heavyhex-69d97569a6d79207.d: examples/qpe_heavyhex.rs Cargo.toml

/root/repo/target/debug/examples/libqpe_heavyhex-69d97569a6d79207.rmeta: examples/qpe_heavyhex.rs Cargo.toml

examples/qpe_heavyhex.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
