/root/repo/target/debug/examples/compare_compilers-cf6a802de3e8aeb4.d: examples/compare_compilers.rs

/root/repo/target/debug/examples/compare_compilers-cf6a802de3e8aeb4: examples/compare_compilers.rs

examples/compare_compilers.rs:
