/root/repo/target/debug/examples/compare_compilers-1e7f24acbf84f224.d: examples/compare_compilers.rs

/root/repo/target/debug/examples/libcompare_compilers-1e7f24acbf84f224.rmeta: examples/compare_compilers.rs

examples/compare_compilers.rs:
