/root/repo/target/debug/examples/qpe_heavyhex-1e95851d0a323c68.d: examples/qpe_heavyhex.rs

/root/repo/target/debug/examples/qpe_heavyhex-1e95851d0a323c68: examples/qpe_heavyhex.rs

examples/qpe_heavyhex.rs:
