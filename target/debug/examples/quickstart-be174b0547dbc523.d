/root/repo/target/debug/examples/quickstart-be174b0547dbc523.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-be174b0547dbc523: examples/quickstart.rs

examples/quickstart.rs:
