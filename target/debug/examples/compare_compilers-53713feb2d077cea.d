/root/repo/target/debug/examples/compare_compilers-53713feb2d077cea.d: examples/compare_compilers.rs Cargo.toml

/root/repo/target/debug/examples/libcompare_compilers-53713feb2d077cea.rmeta: examples/compare_compilers.rs Cargo.toml

examples/compare_compilers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
