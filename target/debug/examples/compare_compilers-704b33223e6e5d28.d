/root/repo/target/debug/examples/compare_compilers-704b33223e6e5d28.d: examples/compare_compilers.rs

/root/repo/target/debug/examples/compare_compilers-704b33223e6e5d28: examples/compare_compilers.rs

examples/compare_compilers.rs:
