/root/repo/target/debug/examples/partitioned_qft-7b0211217485e7b1.d: examples/partitioned_qft.rs Cargo.toml

/root/repo/target/debug/examples/libpartitioned_qft-7b0211217485e7b1.rmeta: examples/partitioned_qft.rs Cargo.toml

examples/partitioned_qft.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
