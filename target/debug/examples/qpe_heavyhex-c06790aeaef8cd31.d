/root/repo/target/debug/examples/qpe_heavyhex-c06790aeaef8cd31.d: examples/qpe_heavyhex.rs

/root/repo/target/debug/examples/qpe_heavyhex-c06790aeaef8cd31: examples/qpe_heavyhex.rs

examples/qpe_heavyhex.rs:
