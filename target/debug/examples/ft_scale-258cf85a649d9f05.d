/root/repo/target/debug/examples/ft_scale-258cf85a649d9f05.d: examples/ft_scale.rs

/root/repo/target/debug/examples/ft_scale-258cf85a649d9f05: examples/ft_scale.rs

examples/ft_scale.rs:
