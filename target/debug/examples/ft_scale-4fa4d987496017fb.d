/root/repo/target/debug/examples/ft_scale-4fa4d987496017fb.d: examples/ft_scale.rs

/root/repo/target/debug/examples/ft_scale-4fa4d987496017fb: examples/ft_scale.rs

examples/ft_scale.rs:
