/root/repo/target/debug/deps/synth_patterns-325dca95119bff0e.d: crates/bench/src/bin/synth_patterns.rs Cargo.toml

/root/repo/target/debug/deps/libsynth_patterns-325dca95119bff0e.rmeta: crates/bench/src/bin/synth_patterns.rs Cargo.toml

crates/bench/src/bin/synth_patterns.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
