/root/repo/target/debug/deps/properties-1fadc41c9e662421.d: tests/properties.rs

/root/repo/target/debug/deps/properties-1fadc41c9e662421: tests/properties.rs

tests/properties.rs:
