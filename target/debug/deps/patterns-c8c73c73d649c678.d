/root/repo/target/debug/deps/patterns-c8c73c73d649c678.d: crates/bench/benches/patterns.rs

/root/repo/target/debug/deps/patterns-c8c73c73d649c678: crates/bench/benches/patterns.rs

crates/bench/benches/patterns.rs:
