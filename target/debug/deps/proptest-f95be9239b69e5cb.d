/root/repo/target/debug/deps/proptest-f95be9239b69e5cb.d: crates/vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-f95be9239b69e5cb.rmeta: crates/vendor/proptest/src/lib.rs Cargo.toml

crates/vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
