/root/repo/target/debug/deps/qft_arch-50fbcd82d31e6b3f.d: crates/arch/src/lib.rs crates/arch/src/devices.rs crates/arch/src/distance.rs crates/arch/src/graph.rs crates/arch/src/grid.rs crates/arch/src/hamiltonian.rs crates/arch/src/heavyhex.rs crates/arch/src/lattice.rs crates/arch/src/lnn.rs crates/arch/src/sycamore.rs Cargo.toml

/root/repo/target/debug/deps/libqft_arch-50fbcd82d31e6b3f.rmeta: crates/arch/src/lib.rs crates/arch/src/devices.rs crates/arch/src/distance.rs crates/arch/src/graph.rs crates/arch/src/grid.rs crates/arch/src/hamiltonian.rs crates/arch/src/heavyhex.rs crates/arch/src/lattice.rs crates/arch/src/lnn.rs crates/arch/src/sycamore.rs Cargo.toml

crates/arch/src/lib.rs:
crates/arch/src/devices.rs:
crates/arch/src/distance.rs:
crates/arch/src/graph.rs:
crates/arch/src/grid.rs:
crates/arch/src/hamiltonian.rs:
crates/arch/src/heavyhex.rs:
crates/arch/src/lattice.rs:
crates/arch/src/lnn.rs:
crates/arch/src/sycamore.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
