/root/repo/target/debug/deps/rand-0d752bd728da8912.d: crates/vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-0d752bd728da8912.rmeta: crates/vendor/rand/src/lib.rs

crates/vendor/rand/src/lib.rs:
