/root/repo/target/debug/deps/qft_baselines-4829d02fea76b319.d: crates/baselines/src/lib.rs crates/baselines/src/lnn_path.rs crates/baselines/src/optimal.rs crates/baselines/src/pipeline.rs crates/baselines/src/sabre.rs Cargo.toml

/root/repo/target/debug/deps/libqft_baselines-4829d02fea76b319.rmeta: crates/baselines/src/lib.rs crates/baselines/src/lnn_path.rs crates/baselines/src/optimal.rs crates/baselines/src/pipeline.rs crates/baselines/src/sabre.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/lnn_path.rs:
crates/baselines/src/optimal.rs:
crates/baselines/src/pipeline.rs:
crates/baselines/src/sabre.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
