/root/repo/target/debug/deps/fig19-68e13edff09c9335.d: crates/bench/src/bin/fig19.rs

/root/repo/target/debug/deps/fig19-68e13edff09c9335: crates/bench/src/bin/fig19.rs

crates/bench/src/bin/fig19.rs:
