/root/repo/target/debug/deps/complexity-fec7f10411aeeac9.d: crates/bench/src/bin/complexity.rs Cargo.toml

/root/repo/target/debug/deps/libcomplexity-fec7f10411aeeac9.rmeta: crates/bench/src/bin/complexity.rs Cargo.toml

crates/bench/src/bin/complexity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
