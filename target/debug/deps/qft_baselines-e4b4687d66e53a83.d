/root/repo/target/debug/deps/qft_baselines-e4b4687d66e53a83.d: crates/baselines/src/lib.rs crates/baselines/src/lnn_path.rs crates/baselines/src/optimal.rs crates/baselines/src/pipeline.rs crates/baselines/src/sabre.rs

/root/repo/target/debug/deps/libqft_baselines-e4b4687d66e53a83.rlib: crates/baselines/src/lib.rs crates/baselines/src/lnn_path.rs crates/baselines/src/optimal.rs crates/baselines/src/pipeline.rs crates/baselines/src/sabre.rs

/root/repo/target/debug/deps/libqft_baselines-e4b4687d66e53a83.rmeta: crates/baselines/src/lib.rs crates/baselines/src/lnn_path.rs crates/baselines/src/optimal.rs crates/baselines/src/pipeline.rs crates/baselines/src/sabre.rs

crates/baselines/src/lib.rs:
crates/baselines/src/lnn_path.rs:
crates/baselines/src/optimal.rs:
crates/baselines/src/pipeline.rs:
crates/baselines/src/sabre.rs:
