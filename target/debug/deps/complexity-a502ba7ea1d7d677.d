/root/repo/target/debug/deps/complexity-a502ba7ea1d7d677.d: crates/bench/src/bin/complexity.rs Cargo.toml

/root/repo/target/debug/deps/libcomplexity-a502ba7ea1d7d677.rmeta: crates/bench/src/bin/complexity.rs Cargo.toml

crates/bench/src/bin/complexity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
