/root/repo/target/debug/deps/qft_ir-222c4d1f19ff6816.d: crates/ir/src/lib.rs crates/ir/src/circuit.rs crates/ir/src/dag.rs crates/ir/src/gate.rs crates/ir/src/latency.rs crates/ir/src/layout.rs crates/ir/src/metrics.rs crates/ir/src/qasm.rs crates/ir/src/qft.rs crates/ir/src/render.rs Cargo.toml

/root/repo/target/debug/deps/libqft_ir-222c4d1f19ff6816.rmeta: crates/ir/src/lib.rs crates/ir/src/circuit.rs crates/ir/src/dag.rs crates/ir/src/gate.rs crates/ir/src/latency.rs crates/ir/src/layout.rs crates/ir/src/metrics.rs crates/ir/src/qasm.rs crates/ir/src/qft.rs crates/ir/src/render.rs Cargo.toml

crates/ir/src/lib.rs:
crates/ir/src/circuit.rs:
crates/ir/src/dag.rs:
crates/ir/src/gate.rs:
crates/ir/src/latency.rs:
crates/ir/src/layout.rs:
crates/ir/src/metrics.rs:
crates/ir/src/qasm.rs:
crates/ir/src/qft.rs:
crates/ir/src/render.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
