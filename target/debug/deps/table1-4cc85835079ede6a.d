/root/repo/target/debug/deps/table1-4cc85835079ede6a.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-4cc85835079ede6a: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
