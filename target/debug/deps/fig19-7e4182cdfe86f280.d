/root/repo/target/debug/deps/fig19-7e4182cdfe86f280.d: crates/bench/src/bin/fig19.rs

/root/repo/target/debug/deps/libfig19-7e4182cdfe86f280.rmeta: crates/bench/src/bin/fig19.rs

crates/bench/src/bin/fig19.rs:
