/root/repo/target/debug/deps/qft_bench-50db48f63f0e6ec7.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libqft_bench-50db48f63f0e6ec7.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
