/root/repo/target/debug/deps/compile_time-82968df3790b208e.d: crates/bench/benches/compile_time.rs

/root/repo/target/debug/deps/libcompile_time-82968df3790b208e.rmeta: crates/bench/benches/compile_time.rs

crates/bench/benches/compile_time.rs:
