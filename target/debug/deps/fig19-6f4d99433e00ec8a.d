/root/repo/target/debug/deps/fig19-6f4d99433e00ec8a.d: crates/bench/src/bin/fig19.rs

/root/repo/target/debug/deps/fig19-6f4d99433e00ec8a: crates/bench/src/bin/fig19.rs

crates/bench/src/bin/fig19.rs:
