/root/repo/target/debug/deps/synth_patterns-af374e81acff8806.d: crates/bench/src/bin/synth_patterns.rs

/root/repo/target/debug/deps/libsynth_patterns-af374e81acff8806.rmeta: crates/bench/src/bin/synth_patterns.rs

crates/bench/src/bin/synth_patterns.rs:
