/root/repo/target/debug/deps/fig17-59ce7428c14800e0.d: crates/bench/src/bin/fig17.rs

/root/repo/target/debug/deps/fig17-59ce7428c14800e0: crates/bench/src/bin/fig17.rs

crates/bench/src/bin/fig17.rs:
