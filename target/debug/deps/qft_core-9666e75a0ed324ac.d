/root/repo/target/debug/deps/qft_core-9666e75a0ed324ac.d: crates/core/src/lib.rs crates/core/src/compiler.rs crates/core/src/heavyhex.rs crates/core/src/lattice.rs crates/core/src/line.rs crates/core/src/lnn.rs crates/core/src/pipeline.rs crates/core/src/progress.rs crates/core/src/registry.rs crates/core/src/sycamore.rs crates/core/src/target.rs crates/core/src/two_row.rs Cargo.toml

/root/repo/target/debug/deps/libqft_core-9666e75a0ed324ac.rmeta: crates/core/src/lib.rs crates/core/src/compiler.rs crates/core/src/heavyhex.rs crates/core/src/lattice.rs crates/core/src/line.rs crates/core/src/lnn.rs crates/core/src/pipeline.rs crates/core/src/progress.rs crates/core/src/registry.rs crates/core/src/sycamore.rs crates/core/src/target.rs crates/core/src/two_row.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/compiler.rs:
crates/core/src/heavyhex.rs:
crates/core/src/lattice.rs:
crates/core/src/line.rs:
crates/core/src/lnn.rs:
crates/core/src/pipeline.rs:
crates/core/src/progress.rs:
crates/core/src/registry.rs:
crates/core/src/sycamore.rs:
crates/core/src/target.rs:
crates/core/src/two_row.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
