/root/repo/target/debug/deps/end_to_end-0d702c730afb9af8.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-0d702c730afb9af8: tests/end_to_end.rs

tests/end_to_end.rs:
