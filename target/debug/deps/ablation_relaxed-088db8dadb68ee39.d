/root/repo/target/debug/deps/ablation_relaxed-088db8dadb68ee39.d: crates/bench/src/bin/ablation_relaxed.rs Cargo.toml

/root/repo/target/debug/deps/libablation_relaxed-088db8dadb68ee39.rmeta: crates/bench/src/bin/ablation_relaxed.rs Cargo.toml

crates/bench/src/bin/ablation_relaxed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
