/root/repo/target/debug/deps/rand-65710aee7f4acd2c.d: crates/vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-65710aee7f4acd2c.rmeta: crates/vendor/rand/src/lib.rs

crates/vendor/rand/src/lib.rs:
