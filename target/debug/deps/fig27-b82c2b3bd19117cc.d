/root/repo/target/debug/deps/fig27-b82c2b3bd19117cc.d: crates/bench/src/bin/fig27.rs

/root/repo/target/debug/deps/libfig27-b82c2b3bd19117cc.rmeta: crates/bench/src/bin/fig27.rs

crates/bench/src/bin/fig27.rs:
