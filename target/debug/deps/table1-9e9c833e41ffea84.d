/root/repo/target/debug/deps/table1-9e9c833e41ffea84.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-9e9c833e41ffea84: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
