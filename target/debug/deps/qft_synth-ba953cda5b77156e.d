/root/repo/target/debug/deps/qft_synth-ba953cda5b77156e.d: crates/synth/src/lib.rs crates/synth/src/engine.rs crates/synth/src/patterns.rs Cargo.toml

/root/repo/target/debug/deps/libqft_synth-ba953cda5b77156e.rmeta: crates/synth/src/lib.rs crates/synth/src/engine.rs crates/synth/src/patterns.rs Cargo.toml

crates/synth/src/lib.rs:
crates/synth/src/engine.rs:
crates/synth/src/patterns.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
