/root/repo/target/debug/deps/complexity-3005113210c00ecf.d: crates/bench/src/bin/complexity.rs

/root/repo/target/debug/deps/complexity-3005113210c00ecf: crates/bench/src/bin/complexity.rs

crates/bench/src/bin/complexity.rs:
