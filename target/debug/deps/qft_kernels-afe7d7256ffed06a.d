/root/repo/target/debug/deps/qft_kernels-afe7d7256ffed06a.d: src/lib.rs

/root/repo/target/debug/deps/libqft_kernels-afe7d7256ffed06a.rlib: src/lib.rs

/root/repo/target/debug/deps/libqft_kernels-afe7d7256ffed06a.rmeta: src/lib.rs

src/lib.rs:
