/root/repo/target/debug/deps/serde_json-8e701f3549ab240c.d: crates/vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-8e701f3549ab240c.rmeta: crates/vendor/serde_json/src/lib.rs

crates/vendor/serde_json/src/lib.rs:
