/root/repo/target/debug/deps/ablation_relaxed-0d08ee311276a34a.d: crates/bench/src/bin/ablation_relaxed.rs

/root/repo/target/debug/deps/ablation_relaxed-0d08ee311276a34a: crates/bench/src/bin/ablation_relaxed.rs

crates/bench/src/bin/ablation_relaxed.rs:
