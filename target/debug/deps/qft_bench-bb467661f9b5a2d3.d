/root/repo/target/debug/deps/qft_bench-bb467661f9b5a2d3.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/qft_bench-bb467661f9b5a2d3: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
