/root/repo/target/debug/deps/qft_synth-484fec467a8c75e5.d: crates/synth/src/lib.rs crates/synth/src/engine.rs crates/synth/src/patterns.rs

/root/repo/target/debug/deps/libqft_synth-484fec467a8c75e5.rmeta: crates/synth/src/lib.rs crates/synth/src/engine.rs crates/synth/src/patterns.rs

crates/synth/src/lib.rs:
crates/synth/src/engine.rs:
crates/synth/src/patterns.rs:
