/root/repo/target/debug/deps/proptest-805006bb104d969d.d: crates/vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-805006bb104d969d: crates/vendor/proptest/src/lib.rs

crates/vendor/proptest/src/lib.rs:
