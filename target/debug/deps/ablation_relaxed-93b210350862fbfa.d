/root/repo/target/debug/deps/ablation_relaxed-93b210350862fbfa.d: crates/bench/src/bin/ablation_relaxed.rs

/root/repo/target/debug/deps/libablation_relaxed-93b210350862fbfa.rmeta: crates/bench/src/bin/ablation_relaxed.rs

crates/bench/src/bin/ablation_relaxed.rs:
