/root/repo/target/debug/deps/serde-1a801ca74ec234af.d: crates/vendor/serde/src/lib.rs

/root/repo/target/debug/deps/serde-1a801ca74ec234af: crates/vendor/serde/src/lib.rs

crates/vendor/serde/src/lib.rs:
