/root/repo/target/debug/deps/qft_kernels-78dbaf21d9d810bb.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libqft_kernels-78dbaf21d9d810bb.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
