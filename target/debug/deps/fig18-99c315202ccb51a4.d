/root/repo/target/debug/deps/fig18-99c315202ccb51a4.d: crates/bench/src/bin/fig18.rs

/root/repo/target/debug/deps/libfig18-99c315202ccb51a4.rmeta: crates/bench/src/bin/fig18.rs

crates/bench/src/bin/fig18.rs:
