/root/repo/target/debug/deps/criterion-f967cf257c173b25.d: crates/vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-f967cf257c173b25.rmeta: crates/vendor/criterion/src/lib.rs

crates/vendor/criterion/src/lib.rs:
