/root/repo/target/debug/deps/qft_arch-76247fe79f2cdec6.d: crates/arch/src/lib.rs crates/arch/src/devices.rs crates/arch/src/distance.rs crates/arch/src/graph.rs crates/arch/src/grid.rs crates/arch/src/hamiltonian.rs crates/arch/src/heavyhex.rs crates/arch/src/lattice.rs crates/arch/src/lnn.rs crates/arch/src/sycamore.rs

/root/repo/target/debug/deps/libqft_arch-76247fe79f2cdec6.rlib: crates/arch/src/lib.rs crates/arch/src/devices.rs crates/arch/src/distance.rs crates/arch/src/graph.rs crates/arch/src/grid.rs crates/arch/src/hamiltonian.rs crates/arch/src/heavyhex.rs crates/arch/src/lattice.rs crates/arch/src/lnn.rs crates/arch/src/sycamore.rs

/root/repo/target/debug/deps/libqft_arch-76247fe79f2cdec6.rmeta: crates/arch/src/lib.rs crates/arch/src/devices.rs crates/arch/src/distance.rs crates/arch/src/graph.rs crates/arch/src/grid.rs crates/arch/src/hamiltonian.rs crates/arch/src/heavyhex.rs crates/arch/src/lattice.rs crates/arch/src/lnn.rs crates/arch/src/sycamore.rs

crates/arch/src/lib.rs:
crates/arch/src/devices.rs:
crates/arch/src/distance.rs:
crates/arch/src/graph.rs:
crates/arch/src/grid.rs:
crates/arch/src/hamiltonian.rs:
crates/arch/src/heavyhex.rs:
crates/arch/src/lattice.rs:
crates/arch/src/lnn.rs:
crates/arch/src/sycamore.rs:
