/root/repo/target/debug/deps/complexity-da3477372afe0305.d: crates/bench/src/bin/complexity.rs

/root/repo/target/debug/deps/complexity-da3477372afe0305: crates/bench/src/bin/complexity.rs

crates/bench/src/bin/complexity.rs:
