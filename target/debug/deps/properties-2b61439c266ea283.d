/root/repo/target/debug/deps/properties-2b61439c266ea283.d: tests/properties.rs

/root/repo/target/debug/deps/properties-2b61439c266ea283: tests/properties.rs

tests/properties.rs:
