/root/repo/target/debug/deps/qft_arch-aa891b6002c1e4ab.d: crates/arch/src/lib.rs crates/arch/src/devices.rs crates/arch/src/distance.rs crates/arch/src/graph.rs crates/arch/src/grid.rs crates/arch/src/hamiltonian.rs crates/arch/src/heavyhex.rs crates/arch/src/lattice.rs crates/arch/src/lnn.rs crates/arch/src/sycamore.rs

/root/repo/target/debug/deps/qft_arch-aa891b6002c1e4ab: crates/arch/src/lib.rs crates/arch/src/devices.rs crates/arch/src/distance.rs crates/arch/src/graph.rs crates/arch/src/grid.rs crates/arch/src/hamiltonian.rs crates/arch/src/heavyhex.rs crates/arch/src/lattice.rs crates/arch/src/lnn.rs crates/arch/src/sycamore.rs

crates/arch/src/lib.rs:
crates/arch/src/devices.rs:
crates/arch/src/distance.rs:
crates/arch/src/graph.rs:
crates/arch/src/grid.rs:
crates/arch/src/hamiltonian.rs:
crates/arch/src/heavyhex.rs:
crates/arch/src/lattice.rs:
crates/arch/src/lnn.rs:
crates/arch/src/sycamore.rs:
