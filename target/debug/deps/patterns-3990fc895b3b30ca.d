/root/repo/target/debug/deps/patterns-3990fc895b3b30ca.d: crates/bench/benches/patterns.rs Cargo.toml

/root/repo/target/debug/deps/libpatterns-3990fc895b3b30ca.rmeta: crates/bench/benches/patterns.rs Cargo.toml

crates/bench/benches/patterns.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
