/root/repo/target/debug/deps/substrates-d3f6ca45e9c55ab0.d: tests/substrates.rs

/root/repo/target/debug/deps/libsubstrates-d3f6ca45e9c55ab0.rmeta: tests/substrates.rs

tests/substrates.rs:
