/root/repo/target/debug/deps/serde-e875145dd01448e4.d: crates/vendor/serde/src/lib.rs

/root/repo/target/debug/deps/serde-e875145dd01448e4: crates/vendor/serde/src/lib.rs

crates/vendor/serde/src/lib.rs:
