/root/repo/target/debug/deps/qft_baselines-09c5ea2a8052fc1c.d: crates/baselines/src/lib.rs crates/baselines/src/lnn_path.rs crates/baselines/src/optimal.rs crates/baselines/src/pipeline.rs crates/baselines/src/sabre.rs

/root/repo/target/debug/deps/libqft_baselines-09c5ea2a8052fc1c.rmeta: crates/baselines/src/lib.rs crates/baselines/src/lnn_path.rs crates/baselines/src/optimal.rs crates/baselines/src/pipeline.rs crates/baselines/src/sabre.rs

crates/baselines/src/lib.rs:
crates/baselines/src/lnn_path.rs:
crates/baselines/src/optimal.rs:
crates/baselines/src/pipeline.rs:
crates/baselines/src/sabre.rs:
