/root/repo/target/debug/deps/fig27-621b587f049ebff2.d: crates/bench/src/bin/fig27.rs Cargo.toml

/root/repo/target/debug/deps/libfig27-621b587f049ebff2.rmeta: crates/bench/src/bin/fig27.rs Cargo.toml

crates/bench/src/bin/fig27.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
