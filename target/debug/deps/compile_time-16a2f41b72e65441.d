/root/repo/target/debug/deps/compile_time-16a2f41b72e65441.d: crates/bench/benches/compile_time.rs

/root/repo/target/debug/deps/compile_time-16a2f41b72e65441: crates/bench/benches/compile_time.rs

crates/bench/benches/compile_time.rs:
