/root/repo/target/debug/deps/fig18-8e4d90e6a18cfe54.d: crates/bench/src/bin/fig18.rs

/root/repo/target/debug/deps/fig18-8e4d90e6a18cfe54: crates/bench/src/bin/fig18.rs

crates/bench/src/bin/fig18.rs:
