/root/repo/target/debug/deps/synth_patterns-fa66417bc96488c2.d: crates/bench/src/bin/synth_patterns.rs

/root/repo/target/debug/deps/synth_patterns-fa66417bc96488c2: crates/bench/src/bin/synth_patterns.rs

crates/bench/src/bin/synth_patterns.rs:
