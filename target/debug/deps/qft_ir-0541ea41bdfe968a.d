/root/repo/target/debug/deps/qft_ir-0541ea41bdfe968a.d: crates/ir/src/lib.rs crates/ir/src/circuit.rs crates/ir/src/dag.rs crates/ir/src/gate.rs crates/ir/src/latency.rs crates/ir/src/layout.rs crates/ir/src/metrics.rs crates/ir/src/qasm.rs crates/ir/src/qft.rs crates/ir/src/render.rs

/root/repo/target/debug/deps/libqft_ir-0541ea41bdfe968a.rlib: crates/ir/src/lib.rs crates/ir/src/circuit.rs crates/ir/src/dag.rs crates/ir/src/gate.rs crates/ir/src/latency.rs crates/ir/src/layout.rs crates/ir/src/metrics.rs crates/ir/src/qasm.rs crates/ir/src/qft.rs crates/ir/src/render.rs

/root/repo/target/debug/deps/libqft_ir-0541ea41bdfe968a.rmeta: crates/ir/src/lib.rs crates/ir/src/circuit.rs crates/ir/src/dag.rs crates/ir/src/gate.rs crates/ir/src/latency.rs crates/ir/src/layout.rs crates/ir/src/metrics.rs crates/ir/src/qasm.rs crates/ir/src/qft.rs crates/ir/src/render.rs

crates/ir/src/lib.rs:
crates/ir/src/circuit.rs:
crates/ir/src/dag.rs:
crates/ir/src/gate.rs:
crates/ir/src/latency.rs:
crates/ir/src/layout.rs:
crates/ir/src/metrics.rs:
crates/ir/src/qasm.rs:
crates/ir/src/qft.rs:
crates/ir/src/render.rs:
