/root/repo/target/debug/deps/qft_baselines-3297f53aa5fa0a06.d: crates/baselines/src/lib.rs crates/baselines/src/lnn_path.rs crates/baselines/src/optimal.rs crates/baselines/src/pipeline.rs crates/baselines/src/sabre.rs

/root/repo/target/debug/deps/libqft_baselines-3297f53aa5fa0a06.rlib: crates/baselines/src/lib.rs crates/baselines/src/lnn_path.rs crates/baselines/src/optimal.rs crates/baselines/src/pipeline.rs crates/baselines/src/sabre.rs

/root/repo/target/debug/deps/libqft_baselines-3297f53aa5fa0a06.rmeta: crates/baselines/src/lib.rs crates/baselines/src/lnn_path.rs crates/baselines/src/optimal.rs crates/baselines/src/pipeline.rs crates/baselines/src/sabre.rs

crates/baselines/src/lib.rs:
crates/baselines/src/lnn_path.rs:
crates/baselines/src/optimal.rs:
crates/baselines/src/pipeline.rs:
crates/baselines/src/sabre.rs:
