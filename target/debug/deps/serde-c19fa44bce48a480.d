/root/repo/target/debug/deps/serde-c19fa44bce48a480.d: crates/vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-c19fa44bce48a480.rlib: crates/vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-c19fa44bce48a480.rmeta: crates/vendor/serde/src/lib.rs

crates/vendor/serde/src/lib.rs:
