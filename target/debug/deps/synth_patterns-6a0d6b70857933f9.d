/root/repo/target/debug/deps/synth_patterns-6a0d6b70857933f9.d: crates/bench/src/bin/synth_patterns.rs Cargo.toml

/root/repo/target/debug/deps/libsynth_patterns-6a0d6b70857933f9.rmeta: crates/bench/src/bin/synth_patterns.rs Cargo.toml

crates/bench/src/bin/synth_patterns.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
