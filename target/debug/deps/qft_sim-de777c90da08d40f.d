/root/repo/target/debug/deps/qft_sim-de777c90da08d40f.d: crates/sim/src/lib.rs crates/sim/src/complex.rs crates/sim/src/equiv.rs crates/sim/src/reference.rs crates/sim/src/state.rs crates/sim/src/symbolic.rs

/root/repo/target/debug/deps/libqft_sim-de777c90da08d40f.rmeta: crates/sim/src/lib.rs crates/sim/src/complex.rs crates/sim/src/equiv.rs crates/sim/src/reference.rs crates/sim/src/state.rs crates/sim/src/symbolic.rs

crates/sim/src/lib.rs:
crates/sim/src/complex.rs:
crates/sim/src/equiv.rs:
crates/sim/src/reference.rs:
crates/sim/src/state.rs:
crates/sim/src/symbolic.rs:
