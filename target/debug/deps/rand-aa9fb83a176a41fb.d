/root/repo/target/debug/deps/rand-aa9fb83a176a41fb.d: crates/vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-aa9fb83a176a41fb.rlib: crates/vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-aa9fb83a176a41fb.rmeta: crates/vendor/rand/src/lib.rs

crates/vendor/rand/src/lib.rs:
