/root/repo/target/debug/deps/qft_kernels-b522f2568ba29993.d: src/lib.rs

/root/repo/target/debug/deps/qft_kernels-b522f2568ba29993: src/lib.rs

src/lib.rs:
