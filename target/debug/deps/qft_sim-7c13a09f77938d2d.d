/root/repo/target/debug/deps/qft_sim-7c13a09f77938d2d.d: crates/sim/src/lib.rs crates/sim/src/complex.rs crates/sim/src/equiv.rs crates/sim/src/reference.rs crates/sim/src/state.rs crates/sim/src/symbolic.rs

/root/repo/target/debug/deps/libqft_sim-7c13a09f77938d2d.rlib: crates/sim/src/lib.rs crates/sim/src/complex.rs crates/sim/src/equiv.rs crates/sim/src/reference.rs crates/sim/src/state.rs crates/sim/src/symbolic.rs

/root/repo/target/debug/deps/libqft_sim-7c13a09f77938d2d.rmeta: crates/sim/src/lib.rs crates/sim/src/complex.rs crates/sim/src/equiv.rs crates/sim/src/reference.rs crates/sim/src/state.rs crates/sim/src/symbolic.rs

crates/sim/src/lib.rs:
crates/sim/src/complex.rs:
crates/sim/src/equiv.rs:
crates/sim/src/reference.rs:
crates/sim/src/state.rs:
crates/sim/src/symbolic.rs:
