/root/repo/target/debug/deps/proptest-6ebb5908b6286fff.d: crates/vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-6ebb5908b6286fff.rmeta: crates/vendor/proptest/src/lib.rs

crates/vendor/proptest/src/lib.rs:
