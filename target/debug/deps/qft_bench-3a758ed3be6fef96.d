/root/repo/target/debug/deps/qft_bench-3a758ed3be6fef96.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libqft_bench-3a758ed3be6fef96.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
