/root/repo/target/debug/deps/patterns-315492f868dfde4f.d: crates/bench/benches/patterns.rs

/root/repo/target/debug/deps/libpatterns-315492f868dfde4f.rmeta: crates/bench/benches/patterns.rs

crates/bench/benches/patterns.rs:
