/root/repo/target/debug/deps/serde_json-badf7d058d07bd90.d: crates/vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-badf7d058d07bd90.rlib: crates/vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-badf7d058d07bd90.rmeta: crates/vendor/serde_json/src/lib.rs

crates/vendor/serde_json/src/lib.rs:
