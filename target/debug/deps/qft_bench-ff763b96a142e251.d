/root/repo/target/debug/deps/qft_bench-ff763b96a142e251.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libqft_bench-ff763b96a142e251.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
