/root/repo/target/debug/deps/qft_synth-7510779c5cb9794d.d: crates/synth/src/lib.rs crates/synth/src/engine.rs crates/synth/src/patterns.rs

/root/repo/target/debug/deps/libqft_synth-7510779c5cb9794d.rlib: crates/synth/src/lib.rs crates/synth/src/engine.rs crates/synth/src/patterns.rs

/root/repo/target/debug/deps/libqft_synth-7510779c5cb9794d.rmeta: crates/synth/src/lib.rs crates/synth/src/engine.rs crates/synth/src/patterns.rs

crates/synth/src/lib.rs:
crates/synth/src/engine.rs:
crates/synth/src/patterns.rs:
