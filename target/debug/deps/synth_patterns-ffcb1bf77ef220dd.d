/root/repo/target/debug/deps/synth_patterns-ffcb1bf77ef220dd.d: crates/bench/src/bin/synth_patterns.rs

/root/repo/target/debug/deps/libsynth_patterns-ffcb1bf77ef220dd.rmeta: crates/bench/src/bin/synth_patterns.rs

crates/bench/src/bin/synth_patterns.rs:
