/root/repo/target/debug/deps/qft_ir-3baf735fcd0ca653.d: crates/ir/src/lib.rs crates/ir/src/circuit.rs crates/ir/src/dag.rs crates/ir/src/gate.rs crates/ir/src/latency.rs crates/ir/src/layout.rs crates/ir/src/metrics.rs crates/ir/src/qasm.rs crates/ir/src/qft.rs crates/ir/src/render.rs

/root/repo/target/debug/deps/qft_ir-3baf735fcd0ca653: crates/ir/src/lib.rs crates/ir/src/circuit.rs crates/ir/src/dag.rs crates/ir/src/gate.rs crates/ir/src/latency.rs crates/ir/src/layout.rs crates/ir/src/metrics.rs crates/ir/src/qasm.rs crates/ir/src/qft.rs crates/ir/src/render.rs

crates/ir/src/lib.rs:
crates/ir/src/circuit.rs:
crates/ir/src/dag.rs:
crates/ir/src/gate.rs:
crates/ir/src/latency.rs:
crates/ir/src/layout.rs:
crates/ir/src/metrics.rs:
crates/ir/src/qasm.rs:
crates/ir/src/qft.rs:
crates/ir/src/render.rs:
