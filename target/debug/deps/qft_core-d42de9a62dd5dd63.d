/root/repo/target/debug/deps/qft_core-d42de9a62dd5dd63.d: crates/core/src/lib.rs crates/core/src/compiler.rs crates/core/src/heavyhex.rs crates/core/src/lattice.rs crates/core/src/line.rs crates/core/src/lnn.rs crates/core/src/pipeline.rs crates/core/src/progress.rs crates/core/src/registry.rs crates/core/src/sycamore.rs crates/core/src/target.rs crates/core/src/two_row.rs

/root/repo/target/debug/deps/libqft_core-d42de9a62dd5dd63.rlib: crates/core/src/lib.rs crates/core/src/compiler.rs crates/core/src/heavyhex.rs crates/core/src/lattice.rs crates/core/src/line.rs crates/core/src/lnn.rs crates/core/src/pipeline.rs crates/core/src/progress.rs crates/core/src/registry.rs crates/core/src/sycamore.rs crates/core/src/target.rs crates/core/src/two_row.rs

/root/repo/target/debug/deps/libqft_core-d42de9a62dd5dd63.rmeta: crates/core/src/lib.rs crates/core/src/compiler.rs crates/core/src/heavyhex.rs crates/core/src/lattice.rs crates/core/src/line.rs crates/core/src/lnn.rs crates/core/src/pipeline.rs crates/core/src/progress.rs crates/core/src/registry.rs crates/core/src/sycamore.rs crates/core/src/target.rs crates/core/src/two_row.rs

crates/core/src/lib.rs:
crates/core/src/compiler.rs:
crates/core/src/heavyhex.rs:
crates/core/src/lattice.rs:
crates/core/src/line.rs:
crates/core/src/lnn.rs:
crates/core/src/pipeline.rs:
crates/core/src/progress.rs:
crates/core/src/registry.rs:
crates/core/src/sycamore.rs:
crates/core/src/target.rs:
crates/core/src/two_row.rs:
