/root/repo/target/debug/deps/serde_json-601ff4005f6d9229.d: crates/vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-601ff4005f6d9229.rlib: crates/vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-601ff4005f6d9229.rmeta: crates/vendor/serde_json/src/lib.rs

crates/vendor/serde_json/src/lib.rs:
