/root/repo/target/debug/deps/substrates-b9a0ac258e4d6282.d: tests/substrates.rs

/root/repo/target/debug/deps/substrates-b9a0ac258e4d6282: tests/substrates.rs

tests/substrates.rs:
