/root/repo/target/debug/deps/qft_bench-7fe9e5f3fe6bd917.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libqft_bench-7fe9e5f3fe6bd917.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libqft_bench-7fe9e5f3fe6bd917.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
