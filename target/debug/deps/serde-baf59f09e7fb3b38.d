/root/repo/target/debug/deps/serde-baf59f09e7fb3b38.d: crates/vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-baf59f09e7fb3b38.rlib: crates/vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-baf59f09e7fb3b38.rmeta: crates/vendor/serde/src/lib.rs

crates/vendor/serde/src/lib.rs:
