/root/repo/target/debug/deps/rand-0587478dfcb57a60.d: crates/vendor/rand/src/lib.rs

/root/repo/target/debug/deps/rand-0587478dfcb57a60: crates/vendor/rand/src/lib.rs

crates/vendor/rand/src/lib.rs:
