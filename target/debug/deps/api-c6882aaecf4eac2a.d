/root/repo/target/debug/deps/api-c6882aaecf4eac2a.d: tests/api.rs

/root/repo/target/debug/deps/libapi-c6882aaecf4eac2a.rmeta: tests/api.rs

tests/api.rs:
