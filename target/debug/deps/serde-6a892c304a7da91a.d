/root/repo/target/debug/deps/serde-6a892c304a7da91a.d: crates/vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-6a892c304a7da91a.rmeta: crates/vendor/serde/src/lib.rs

crates/vendor/serde/src/lib.rs:
