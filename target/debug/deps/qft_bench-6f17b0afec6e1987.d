/root/repo/target/debug/deps/qft_bench-6f17b0afec6e1987.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libqft_bench-6f17b0afec6e1987.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
