/root/repo/target/debug/deps/fig17-7065db96702b66da.d: crates/bench/src/bin/fig17.rs

/root/repo/target/debug/deps/fig17-7065db96702b66da: crates/bench/src/bin/fig17.rs

crates/bench/src/bin/fig17.rs:
