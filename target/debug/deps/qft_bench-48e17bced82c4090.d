/root/repo/target/debug/deps/qft_bench-48e17bced82c4090.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libqft_bench-48e17bced82c4090.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libqft_bench-48e17bced82c4090.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
