/root/repo/target/debug/deps/substrates-1ebd122f0db3b427.d: tests/substrates.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrates-1ebd122f0db3b427.rmeta: tests/substrates.rs Cargo.toml

tests/substrates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
