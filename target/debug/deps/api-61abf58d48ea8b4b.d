/root/repo/target/debug/deps/api-61abf58d48ea8b4b.d: tests/api.rs Cargo.toml

/root/repo/target/debug/deps/libapi-61abf58d48ea8b4b.rmeta: tests/api.rs Cargo.toml

tests/api.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
