/root/repo/target/debug/deps/qft_bench-67a14625e6b97911.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/qft_bench-67a14625e6b97911: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
