/root/repo/target/debug/deps/fig17-9b70ae489b674a2c.d: crates/bench/src/bin/fig17.rs

/root/repo/target/debug/deps/libfig17-9b70ae489b674a2c.rmeta: crates/bench/src/bin/fig17.rs

crates/bench/src/bin/fig17.rs:
