/root/repo/target/debug/deps/properties-f104b70cd8f5f80c.d: tests/properties.rs

/root/repo/target/debug/deps/libproperties-f104b70cd8f5f80c.rmeta: tests/properties.rs

tests/properties.rs:
