/root/repo/target/debug/deps/fig27-59c21ce72484f9ff.d: crates/bench/src/bin/fig27.rs

/root/repo/target/debug/deps/fig27-59c21ce72484f9ff: crates/bench/src/bin/fig27.rs

crates/bench/src/bin/fig27.rs:
