/root/repo/target/debug/deps/qft_kernels-fb8c843d73fc9735.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libqft_kernels-fb8c843d73fc9735.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
