/root/repo/target/debug/deps/proptest-ab3685e19793ed96.d: crates/vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-ab3685e19793ed96.rmeta: crates/vendor/proptest/src/lib.rs

crates/vendor/proptest/src/lib.rs:
