/root/repo/target/debug/deps/fig18-0b313d864b9831eb.d: crates/bench/src/bin/fig18.rs

/root/repo/target/debug/deps/libfig18-0b313d864b9831eb.rmeta: crates/bench/src/bin/fig18.rs

crates/bench/src/bin/fig18.rs:
