/root/repo/target/debug/deps/serde_json-aeb48728ab968a14.d: crates/vendor/serde_json/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_json-aeb48728ab968a14.rmeta: crates/vendor/serde_json/src/lib.rs Cargo.toml

crates/vendor/serde_json/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
