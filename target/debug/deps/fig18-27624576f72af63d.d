/root/repo/target/debug/deps/fig18-27624576f72af63d.d: crates/bench/src/bin/fig18.rs

/root/repo/target/debug/deps/fig18-27624576f72af63d: crates/bench/src/bin/fig18.rs

crates/bench/src/bin/fig18.rs:
