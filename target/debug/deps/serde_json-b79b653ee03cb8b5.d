/root/repo/target/debug/deps/serde_json-b79b653ee03cb8b5.d: crates/vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-b79b653ee03cb8b5.rmeta: crates/vendor/serde_json/src/lib.rs

crates/vendor/serde_json/src/lib.rs:
