/root/repo/target/debug/deps/ablation_relaxed-a926c721744c3fb2.d: crates/bench/src/bin/ablation_relaxed.rs

/root/repo/target/debug/deps/libablation_relaxed-a926c721744c3fb2.rmeta: crates/bench/src/bin/ablation_relaxed.rs

crates/bench/src/bin/ablation_relaxed.rs:
