/root/repo/target/debug/deps/properties-6e97e6c6274a28fb.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-6e97e6c6274a28fb.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
