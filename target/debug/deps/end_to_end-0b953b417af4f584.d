/root/repo/target/debug/deps/end_to_end-0b953b417af4f584.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-0b953b417af4f584: tests/end_to_end.rs

tests/end_to_end.rs:
