/root/repo/target/debug/deps/proptest-c8c6bffa8c02fdd7.d: crates/vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-c8c6bffa8c02fdd7.rlib: crates/vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-c8c6bffa8c02fdd7.rmeta: crates/vendor/proptest/src/lib.rs

crates/vendor/proptest/src/lib.rs:
