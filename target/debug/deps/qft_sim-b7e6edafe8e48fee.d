/root/repo/target/debug/deps/qft_sim-b7e6edafe8e48fee.d: crates/sim/src/lib.rs crates/sim/src/complex.rs crates/sim/src/equiv.rs crates/sim/src/reference.rs crates/sim/src/state.rs crates/sim/src/symbolic.rs Cargo.toml

/root/repo/target/debug/deps/libqft_sim-b7e6edafe8e48fee.rmeta: crates/sim/src/lib.rs crates/sim/src/complex.rs crates/sim/src/equiv.rs crates/sim/src/reference.rs crates/sim/src/state.rs crates/sim/src/symbolic.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/complex.rs:
crates/sim/src/equiv.rs:
crates/sim/src/reference.rs:
crates/sim/src/state.rs:
crates/sim/src/symbolic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
