/root/repo/target/debug/deps/qft_sim-1c9f1a2727243ade.d: crates/sim/src/lib.rs crates/sim/src/complex.rs crates/sim/src/equiv.rs crates/sim/src/reference.rs crates/sim/src/state.rs crates/sim/src/symbolic.rs

/root/repo/target/debug/deps/libqft_sim-1c9f1a2727243ade.rmeta: crates/sim/src/lib.rs crates/sim/src/complex.rs crates/sim/src/equiv.rs crates/sim/src/reference.rs crates/sim/src/state.rs crates/sim/src/symbolic.rs

crates/sim/src/lib.rs:
crates/sim/src/complex.rs:
crates/sim/src/equiv.rs:
crates/sim/src/reference.rs:
crates/sim/src/state.rs:
crates/sim/src/symbolic.rs:
