/root/repo/target/debug/deps/fig27-af4a2fb600de646b.d: crates/bench/src/bin/fig27.rs

/root/repo/target/debug/deps/fig27-af4a2fb600de646b: crates/bench/src/bin/fig27.rs

crates/bench/src/bin/fig27.rs:
