/root/repo/target/debug/deps/serde-feb5eb79023c7892.d: crates/vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-feb5eb79023c7892.rmeta: crates/vendor/serde/src/lib.rs

crates/vendor/serde/src/lib.rs:
