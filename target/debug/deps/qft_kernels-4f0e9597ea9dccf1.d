/root/repo/target/debug/deps/qft_kernels-4f0e9597ea9dccf1.d: src/lib.rs

/root/repo/target/debug/deps/qft_kernels-4f0e9597ea9dccf1: src/lib.rs

src/lib.rs:
