/root/repo/target/debug/deps/fig18-5c8be74cdc2832cb.d: crates/bench/src/bin/fig18.rs Cargo.toml

/root/repo/target/debug/deps/libfig18-5c8be74cdc2832cb.rmeta: crates/bench/src/bin/fig18.rs Cargo.toml

crates/bench/src/bin/fig18.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
