/root/repo/target/debug/deps/ablation_relaxed-8359d79986b6efbc.d: crates/bench/src/bin/ablation_relaxed.rs

/root/repo/target/debug/deps/ablation_relaxed-8359d79986b6efbc: crates/bench/src/bin/ablation_relaxed.rs

crates/bench/src/bin/ablation_relaxed.rs:
