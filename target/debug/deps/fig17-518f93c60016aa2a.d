/root/repo/target/debug/deps/fig17-518f93c60016aa2a.d: crates/bench/src/bin/fig17.rs

/root/repo/target/debug/deps/libfig17-518f93c60016aa2a.rmeta: crates/bench/src/bin/fig17.rs

crates/bench/src/bin/fig17.rs:
