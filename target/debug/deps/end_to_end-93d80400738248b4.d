/root/repo/target/debug/deps/end_to_end-93d80400738248b4.d: tests/end_to_end.rs

/root/repo/target/debug/deps/libend_to_end-93d80400738248b4.rmeta: tests/end_to_end.rs

tests/end_to_end.rs:
