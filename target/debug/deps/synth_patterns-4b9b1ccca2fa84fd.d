/root/repo/target/debug/deps/synth_patterns-4b9b1ccca2fa84fd.d: crates/bench/src/bin/synth_patterns.rs

/root/repo/target/debug/deps/synth_patterns-4b9b1ccca2fa84fd: crates/bench/src/bin/synth_patterns.rs

crates/bench/src/bin/synth_patterns.rs:
