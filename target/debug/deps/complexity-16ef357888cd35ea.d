/root/repo/target/debug/deps/complexity-16ef357888cd35ea.d: crates/bench/src/bin/complexity.rs

/root/repo/target/debug/deps/complexity-16ef357888cd35ea: crates/bench/src/bin/complexity.rs

crates/bench/src/bin/complexity.rs:
