/root/repo/target/debug/deps/compile_time-72b034c1ae935fb6.d: crates/bench/benches/compile_time.rs Cargo.toml

/root/repo/target/debug/deps/libcompile_time-72b034c1ae935fb6.rmeta: crates/bench/benches/compile_time.rs Cargo.toml

crates/bench/benches/compile_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
