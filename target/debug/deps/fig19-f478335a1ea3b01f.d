/root/repo/target/debug/deps/fig19-f478335a1ea3b01f.d: crates/bench/src/bin/fig19.rs

/root/repo/target/debug/deps/fig19-f478335a1ea3b01f: crates/bench/src/bin/fig19.rs

crates/bench/src/bin/fig19.rs:
