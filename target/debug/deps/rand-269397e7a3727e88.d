/root/repo/target/debug/deps/rand-269397e7a3727e88.d: crates/vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-269397e7a3727e88.rmeta: crates/vendor/rand/src/lib.rs Cargo.toml

crates/vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
