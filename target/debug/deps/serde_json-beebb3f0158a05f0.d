/root/repo/target/debug/deps/serde_json-beebb3f0158a05f0.d: crates/vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-beebb3f0158a05f0: crates/vendor/serde_json/src/lib.rs

crates/vendor/serde_json/src/lib.rs:
