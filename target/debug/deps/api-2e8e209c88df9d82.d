/root/repo/target/debug/deps/api-2e8e209c88df9d82.d: tests/api.rs

/root/repo/target/debug/deps/api-2e8e209c88df9d82: tests/api.rs

tests/api.rs:
