/root/repo/target/debug/deps/qft_kernels-635067be76b42358.d: src/lib.rs

/root/repo/target/debug/deps/libqft_kernels-635067be76b42358.rlib: src/lib.rs

/root/repo/target/debug/deps/libqft_kernels-635067be76b42358.rmeta: src/lib.rs

src/lib.rs:
