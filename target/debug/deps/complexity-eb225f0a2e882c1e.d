/root/repo/target/debug/deps/complexity-eb225f0a2e882c1e.d: crates/bench/src/bin/complexity.rs

/root/repo/target/debug/deps/libcomplexity-eb225f0a2e882c1e.rmeta: crates/bench/src/bin/complexity.rs

crates/bench/src/bin/complexity.rs:
