/root/repo/target/debug/deps/fig18-2871358e1f6dc547.d: crates/bench/src/bin/fig18.rs

/root/repo/target/debug/deps/fig18-2871358e1f6dc547: crates/bench/src/bin/fig18.rs

crates/bench/src/bin/fig18.rs:
