/root/repo/target/debug/deps/table1-934f83b2ee7b1a88.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-934f83b2ee7b1a88: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
