/root/repo/target/debug/deps/substrates-941732f0c343bce2.d: tests/substrates.rs

/root/repo/target/debug/deps/substrates-941732f0c343bce2: tests/substrates.rs

tests/substrates.rs:
