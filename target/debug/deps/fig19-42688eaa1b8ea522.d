/root/repo/target/debug/deps/fig19-42688eaa1b8ea522.d: crates/bench/src/bin/fig19.rs

/root/repo/target/debug/deps/libfig19-42688eaa1b8ea522.rmeta: crates/bench/src/bin/fig19.rs

crates/bench/src/bin/fig19.rs:
