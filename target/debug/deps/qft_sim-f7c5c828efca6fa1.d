/root/repo/target/debug/deps/qft_sim-f7c5c828efca6fa1.d: crates/sim/src/lib.rs crates/sim/src/complex.rs crates/sim/src/equiv.rs crates/sim/src/reference.rs crates/sim/src/state.rs crates/sim/src/symbolic.rs

/root/repo/target/debug/deps/libqft_sim-f7c5c828efca6fa1.rlib: crates/sim/src/lib.rs crates/sim/src/complex.rs crates/sim/src/equiv.rs crates/sim/src/reference.rs crates/sim/src/state.rs crates/sim/src/symbolic.rs

/root/repo/target/debug/deps/libqft_sim-f7c5c828efca6fa1.rmeta: crates/sim/src/lib.rs crates/sim/src/complex.rs crates/sim/src/equiv.rs crates/sim/src/reference.rs crates/sim/src/state.rs crates/sim/src/symbolic.rs

crates/sim/src/lib.rs:
crates/sim/src/complex.rs:
crates/sim/src/equiv.rs:
crates/sim/src/reference.rs:
crates/sim/src/state.rs:
crates/sim/src/symbolic.rs:
