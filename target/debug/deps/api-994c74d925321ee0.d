/root/repo/target/debug/deps/api-994c74d925321ee0.d: tests/api.rs

/root/repo/target/debug/deps/api-994c74d925321ee0: tests/api.rs

tests/api.rs:
