/root/repo/target/debug/deps/complexity-5c7848c8ff9b1a53.d: crates/bench/src/bin/complexity.rs

/root/repo/target/debug/deps/libcomplexity-5c7848c8ff9b1a53.rmeta: crates/bench/src/bin/complexity.rs

crates/bench/src/bin/complexity.rs:
