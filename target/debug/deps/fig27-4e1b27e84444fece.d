/root/repo/target/debug/deps/fig27-4e1b27e84444fece.d: crates/bench/src/bin/fig27.rs

/root/repo/target/debug/deps/fig27-4e1b27e84444fece: crates/bench/src/bin/fig27.rs

crates/bench/src/bin/fig27.rs:
