/root/repo/target/debug/deps/qft_baselines-15029e84c25495ed.d: crates/baselines/src/lib.rs crates/baselines/src/lnn_path.rs crates/baselines/src/optimal.rs crates/baselines/src/pipeline.rs crates/baselines/src/sabre.rs

/root/repo/target/debug/deps/qft_baselines-15029e84c25495ed: crates/baselines/src/lib.rs crates/baselines/src/lnn_path.rs crates/baselines/src/optimal.rs crates/baselines/src/pipeline.rs crates/baselines/src/sabre.rs

crates/baselines/src/lib.rs:
crates/baselines/src/lnn_path.rs:
crates/baselines/src/optimal.rs:
crates/baselines/src/pipeline.rs:
crates/baselines/src/sabre.rs:
