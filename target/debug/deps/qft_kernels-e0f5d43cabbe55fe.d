/root/repo/target/debug/deps/qft_kernels-e0f5d43cabbe55fe.d: src/lib.rs

/root/repo/target/debug/deps/libqft_kernels-e0f5d43cabbe55fe.rmeta: src/lib.rs

src/lib.rs:
