/root/repo/target/debug/deps/fig17-c1848d66fa81b1bf.d: crates/bench/src/bin/fig17.rs

/root/repo/target/debug/deps/fig17-c1848d66fa81b1bf: crates/bench/src/bin/fig17.rs

crates/bench/src/bin/fig17.rs:
