/root/repo/target/debug/deps/synth_patterns-106262a297ab7a5a.d: crates/bench/src/bin/synth_patterns.rs

/root/repo/target/debug/deps/synth_patterns-106262a297ab7a5a: crates/bench/src/bin/synth_patterns.rs

crates/bench/src/bin/synth_patterns.rs:
