/root/repo/target/debug/deps/qft_synth-e3a263857295087f.d: crates/synth/src/lib.rs crates/synth/src/engine.rs crates/synth/src/patterns.rs

/root/repo/target/debug/deps/qft_synth-e3a263857295087f: crates/synth/src/lib.rs crates/synth/src/engine.rs crates/synth/src/patterns.rs

crates/synth/src/lib.rs:
crates/synth/src/engine.rs:
crates/synth/src/patterns.rs:
