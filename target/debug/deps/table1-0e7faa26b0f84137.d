/root/repo/target/debug/deps/table1-0e7faa26b0f84137.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-0e7faa26b0f84137.rmeta: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
