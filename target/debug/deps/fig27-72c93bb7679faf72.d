/root/repo/target/debug/deps/fig27-72c93bb7679faf72.d: crates/bench/src/bin/fig27.rs

/root/repo/target/debug/deps/libfig27-72c93bb7679faf72.rmeta: crates/bench/src/bin/fig27.rs

crates/bench/src/bin/fig27.rs:
