/root/repo/target/debug/deps/serde_derive-318fb836dd814a6e.d: crates/vendor/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-318fb836dd814a6e.rmeta: crates/vendor/serde_derive/src/lib.rs

crates/vendor/serde_derive/src/lib.rs:
