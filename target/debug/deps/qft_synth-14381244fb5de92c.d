/root/repo/target/debug/deps/qft_synth-14381244fb5de92c.d: crates/synth/src/lib.rs crates/synth/src/engine.rs crates/synth/src/patterns.rs

/root/repo/target/debug/deps/libqft_synth-14381244fb5de92c.rmeta: crates/synth/src/lib.rs crates/synth/src/engine.rs crates/synth/src/patterns.rs

crates/synth/src/lib.rs:
crates/synth/src/engine.rs:
crates/synth/src/patterns.rs:
