/root/repo/target/debug/deps/table1-f8326935ab50c2c7.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-f8326935ab50c2c7.rmeta: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
