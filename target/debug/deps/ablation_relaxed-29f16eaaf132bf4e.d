/root/repo/target/debug/deps/ablation_relaxed-29f16eaaf132bf4e.d: crates/bench/src/bin/ablation_relaxed.rs

/root/repo/target/debug/deps/ablation_relaxed-29f16eaaf132bf4e: crates/bench/src/bin/ablation_relaxed.rs

crates/bench/src/bin/ablation_relaxed.rs:
