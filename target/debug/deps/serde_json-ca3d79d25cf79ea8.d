/root/repo/target/debug/deps/serde_json-ca3d79d25cf79ea8.d: crates/vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-ca3d79d25cf79ea8: crates/vendor/serde_json/src/lib.rs

crates/vendor/serde_json/src/lib.rs:
