/root/repo/target/debug/deps/rand-af4a7623700c701f.d: crates/vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-af4a7623700c701f.rmeta: crates/vendor/rand/src/lib.rs Cargo.toml

crates/vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
