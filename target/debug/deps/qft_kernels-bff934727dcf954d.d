/root/repo/target/debug/deps/qft_kernels-bff934727dcf954d.d: src/lib.rs

/root/repo/target/debug/deps/libqft_kernels-bff934727dcf954d.rmeta: src/lib.rs

src/lib.rs:
