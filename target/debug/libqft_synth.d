/root/repo/target/debug/libqft_synth.rlib: /root/repo/crates/synth/src/engine.rs /root/repo/crates/synth/src/lib.rs /root/repo/crates/synth/src/patterns.rs
