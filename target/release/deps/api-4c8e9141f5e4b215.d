/root/repo/target/release/deps/api-4c8e9141f5e4b215.d: tests/api.rs

/root/repo/target/release/deps/api-4c8e9141f5e4b215: tests/api.rs

tests/api.rs:
