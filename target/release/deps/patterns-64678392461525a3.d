/root/repo/target/release/deps/patterns-64678392461525a3.d: crates/bench/benches/patterns.rs

/root/repo/target/release/deps/patterns-64678392461525a3: crates/bench/benches/patterns.rs

crates/bench/benches/patterns.rs:
