/root/repo/target/release/deps/qft_arch-ec02e4a26db32af4.d: crates/arch/src/lib.rs crates/arch/src/devices.rs crates/arch/src/distance.rs crates/arch/src/graph.rs crates/arch/src/grid.rs crates/arch/src/hamiltonian.rs crates/arch/src/heavyhex.rs crates/arch/src/lattice.rs crates/arch/src/lnn.rs crates/arch/src/sycamore.rs

/root/repo/target/release/deps/qft_arch-ec02e4a26db32af4: crates/arch/src/lib.rs crates/arch/src/devices.rs crates/arch/src/distance.rs crates/arch/src/graph.rs crates/arch/src/grid.rs crates/arch/src/hamiltonian.rs crates/arch/src/heavyhex.rs crates/arch/src/lattice.rs crates/arch/src/lnn.rs crates/arch/src/sycamore.rs

crates/arch/src/lib.rs:
crates/arch/src/devices.rs:
crates/arch/src/distance.rs:
crates/arch/src/graph.rs:
crates/arch/src/grid.rs:
crates/arch/src/hamiltonian.rs:
crates/arch/src/heavyhex.rs:
crates/arch/src/lattice.rs:
crates/arch/src/lnn.rs:
crates/arch/src/sycamore.rs:
