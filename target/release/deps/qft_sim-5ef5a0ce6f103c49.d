/root/repo/target/release/deps/qft_sim-5ef5a0ce6f103c49.d: crates/sim/src/lib.rs crates/sim/src/complex.rs crates/sim/src/equiv.rs crates/sim/src/reference.rs crates/sim/src/state.rs crates/sim/src/symbolic.rs

/root/repo/target/release/deps/qft_sim-5ef5a0ce6f103c49: crates/sim/src/lib.rs crates/sim/src/complex.rs crates/sim/src/equiv.rs crates/sim/src/reference.rs crates/sim/src/state.rs crates/sim/src/symbolic.rs

crates/sim/src/lib.rs:
crates/sim/src/complex.rs:
crates/sim/src/equiv.rs:
crates/sim/src/reference.rs:
crates/sim/src/state.rs:
crates/sim/src/symbolic.rs:
