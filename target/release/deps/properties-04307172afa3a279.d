/root/repo/target/release/deps/properties-04307172afa3a279.d: tests/properties.rs

/root/repo/target/release/deps/properties-04307172afa3a279: tests/properties.rs

tests/properties.rs:
