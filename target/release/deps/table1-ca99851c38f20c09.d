/root/repo/target/release/deps/table1-ca99851c38f20c09.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-ca99851c38f20c09: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
