/root/repo/target/release/deps/qft_kernels-b836f2f81d335807.d: src/lib.rs

/root/repo/target/release/deps/libqft_kernels-b836f2f81d335807.rlib: src/lib.rs

/root/repo/target/release/deps/libqft_kernels-b836f2f81d335807.rmeta: src/lib.rs

src/lib.rs:
