/root/repo/target/release/deps/proptest-f9dea61dff438933.d: crates/vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-f9dea61dff438933.rlib: crates/vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-f9dea61dff438933.rmeta: crates/vendor/proptest/src/lib.rs

crates/vendor/proptest/src/lib.rs:
