/root/repo/target/release/deps/qft_synth-3f8ad8fc1b14577a.d: crates/synth/src/lib.rs crates/synth/src/engine.rs crates/synth/src/patterns.rs

/root/repo/target/release/deps/libqft_synth-3f8ad8fc1b14577a.rlib: crates/synth/src/lib.rs crates/synth/src/engine.rs crates/synth/src/patterns.rs

/root/repo/target/release/deps/libqft_synth-3f8ad8fc1b14577a.rmeta: crates/synth/src/lib.rs crates/synth/src/engine.rs crates/synth/src/patterns.rs

crates/synth/src/lib.rs:
crates/synth/src/engine.rs:
crates/synth/src/patterns.rs:
