/root/repo/target/release/deps/qft_synth-60935b67ea1d0b22.d: crates/synth/src/lib.rs crates/synth/src/engine.rs crates/synth/src/patterns.rs

/root/repo/target/release/deps/qft_synth-60935b67ea1d0b22: crates/synth/src/lib.rs crates/synth/src/engine.rs crates/synth/src/patterns.rs

crates/synth/src/lib.rs:
crates/synth/src/engine.rs:
crates/synth/src/patterns.rs:
