/root/repo/target/release/deps/rand-0b277e675cf9e372.d: crates/vendor/rand/src/lib.rs

/root/repo/target/release/deps/rand-0b277e675cf9e372: crates/vendor/rand/src/lib.rs

crates/vendor/rand/src/lib.rs:
