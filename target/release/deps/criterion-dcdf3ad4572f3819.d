/root/repo/target/release/deps/criterion-dcdf3ad4572f3819.d: crates/vendor/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-dcdf3ad4572f3819: crates/vendor/criterion/src/lib.rs

crates/vendor/criterion/src/lib.rs:
