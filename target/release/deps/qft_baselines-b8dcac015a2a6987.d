/root/repo/target/release/deps/qft_baselines-b8dcac015a2a6987.d: crates/baselines/src/lib.rs crates/baselines/src/lnn_path.rs crates/baselines/src/optimal.rs crates/baselines/src/pipeline.rs crates/baselines/src/sabre.rs

/root/repo/target/release/deps/libqft_baselines-b8dcac015a2a6987.rlib: crates/baselines/src/lib.rs crates/baselines/src/lnn_path.rs crates/baselines/src/optimal.rs crates/baselines/src/pipeline.rs crates/baselines/src/sabre.rs

/root/repo/target/release/deps/libqft_baselines-b8dcac015a2a6987.rmeta: crates/baselines/src/lib.rs crates/baselines/src/lnn_path.rs crates/baselines/src/optimal.rs crates/baselines/src/pipeline.rs crates/baselines/src/sabre.rs

crates/baselines/src/lib.rs:
crates/baselines/src/lnn_path.rs:
crates/baselines/src/optimal.rs:
crates/baselines/src/pipeline.rs:
crates/baselines/src/sabre.rs:
