/root/repo/target/release/deps/end_to_end-ad6acd5efa046501.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-ad6acd5efa046501: tests/end_to_end.rs

tests/end_to_end.rs:
