/root/repo/target/release/deps/fig18-fd176164b95493aa.d: crates/bench/src/bin/fig18.rs

/root/repo/target/release/deps/fig18-fd176164b95493aa: crates/bench/src/bin/fig18.rs

crates/bench/src/bin/fig18.rs:
