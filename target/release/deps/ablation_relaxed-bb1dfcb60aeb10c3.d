/root/repo/target/release/deps/ablation_relaxed-bb1dfcb60aeb10c3.d: crates/bench/src/bin/ablation_relaxed.rs

/root/repo/target/release/deps/ablation_relaxed-bb1dfcb60aeb10c3: crates/bench/src/bin/ablation_relaxed.rs

crates/bench/src/bin/ablation_relaxed.rs:
