/root/repo/target/release/deps/fig27-73a8e8afd703f626.d: crates/bench/src/bin/fig27.rs

/root/repo/target/release/deps/fig27-73a8e8afd703f626: crates/bench/src/bin/fig27.rs

crates/bench/src/bin/fig27.rs:
