/root/repo/target/release/deps/table1-61d726673de83e21.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-61d726673de83e21: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
