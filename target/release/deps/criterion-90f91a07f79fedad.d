/root/repo/target/release/deps/criterion-90f91a07f79fedad.d: crates/vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-90f91a07f79fedad.rlib: crates/vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-90f91a07f79fedad.rmeta: crates/vendor/criterion/src/lib.rs

crates/vendor/criterion/src/lib.rs:
