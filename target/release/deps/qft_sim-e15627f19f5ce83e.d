/root/repo/target/release/deps/qft_sim-e15627f19f5ce83e.d: crates/sim/src/lib.rs crates/sim/src/complex.rs crates/sim/src/equiv.rs crates/sim/src/reference.rs crates/sim/src/state.rs crates/sim/src/symbolic.rs

/root/repo/target/release/deps/libqft_sim-e15627f19f5ce83e.rlib: crates/sim/src/lib.rs crates/sim/src/complex.rs crates/sim/src/equiv.rs crates/sim/src/reference.rs crates/sim/src/state.rs crates/sim/src/symbolic.rs

/root/repo/target/release/deps/libqft_sim-e15627f19f5ce83e.rmeta: crates/sim/src/lib.rs crates/sim/src/complex.rs crates/sim/src/equiv.rs crates/sim/src/reference.rs crates/sim/src/state.rs crates/sim/src/symbolic.rs

crates/sim/src/lib.rs:
crates/sim/src/complex.rs:
crates/sim/src/equiv.rs:
crates/sim/src/reference.rs:
crates/sim/src/state.rs:
crates/sim/src/symbolic.rs:
