/root/repo/target/release/deps/qft_bench-5f80d1857fe56613.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/qft_bench-5f80d1857fe56613: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
