/root/repo/target/release/deps/serde_json-93436e045bbd5de5.d: crates/vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/serde_json-93436e045bbd5de5: crates/vendor/serde_json/src/lib.rs

crates/vendor/serde_json/src/lib.rs:
