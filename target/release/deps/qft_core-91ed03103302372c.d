/root/repo/target/release/deps/qft_core-91ed03103302372c.d: crates/core/src/lib.rs crates/core/src/compiler.rs crates/core/src/heavyhex.rs crates/core/src/lattice.rs crates/core/src/line.rs crates/core/src/lnn.rs crates/core/src/pipeline.rs crates/core/src/progress.rs crates/core/src/registry.rs crates/core/src/sycamore.rs crates/core/src/target.rs crates/core/src/two_row.rs

/root/repo/target/release/deps/libqft_core-91ed03103302372c.rlib: crates/core/src/lib.rs crates/core/src/compiler.rs crates/core/src/heavyhex.rs crates/core/src/lattice.rs crates/core/src/line.rs crates/core/src/lnn.rs crates/core/src/pipeline.rs crates/core/src/progress.rs crates/core/src/registry.rs crates/core/src/sycamore.rs crates/core/src/target.rs crates/core/src/two_row.rs

/root/repo/target/release/deps/libqft_core-91ed03103302372c.rmeta: crates/core/src/lib.rs crates/core/src/compiler.rs crates/core/src/heavyhex.rs crates/core/src/lattice.rs crates/core/src/line.rs crates/core/src/lnn.rs crates/core/src/pipeline.rs crates/core/src/progress.rs crates/core/src/registry.rs crates/core/src/sycamore.rs crates/core/src/target.rs crates/core/src/two_row.rs

crates/core/src/lib.rs:
crates/core/src/compiler.rs:
crates/core/src/heavyhex.rs:
crates/core/src/lattice.rs:
crates/core/src/line.rs:
crates/core/src/lnn.rs:
crates/core/src/pipeline.rs:
crates/core/src/progress.rs:
crates/core/src/registry.rs:
crates/core/src/sycamore.rs:
crates/core/src/target.rs:
crates/core/src/two_row.rs:
