/root/repo/target/release/deps/qft_bench-1414c744666abcbc.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libqft_bench-1414c744666abcbc.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libqft_bench-1414c744666abcbc.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
