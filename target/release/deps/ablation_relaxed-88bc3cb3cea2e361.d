/root/repo/target/release/deps/ablation_relaxed-88bc3cb3cea2e361.d: crates/bench/src/bin/ablation_relaxed.rs

/root/repo/target/release/deps/ablation_relaxed-88bc3cb3cea2e361: crates/bench/src/bin/ablation_relaxed.rs

crates/bench/src/bin/ablation_relaxed.rs:
