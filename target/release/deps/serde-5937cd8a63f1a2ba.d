/root/repo/target/release/deps/serde-5937cd8a63f1a2ba.d: crates/vendor/serde/src/lib.rs

/root/repo/target/release/deps/serde-5937cd8a63f1a2ba: crates/vendor/serde/src/lib.rs

crates/vendor/serde/src/lib.rs:
