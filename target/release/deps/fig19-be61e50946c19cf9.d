/root/repo/target/release/deps/fig19-be61e50946c19cf9.d: crates/bench/src/bin/fig19.rs

/root/repo/target/release/deps/fig19-be61e50946c19cf9: crates/bench/src/bin/fig19.rs

crates/bench/src/bin/fig19.rs:
