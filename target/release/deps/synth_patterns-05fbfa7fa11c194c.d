/root/repo/target/release/deps/synth_patterns-05fbfa7fa11c194c.d: crates/bench/src/bin/synth_patterns.rs

/root/repo/target/release/deps/synth_patterns-05fbfa7fa11c194c: crates/bench/src/bin/synth_patterns.rs

crates/bench/src/bin/synth_patterns.rs:
