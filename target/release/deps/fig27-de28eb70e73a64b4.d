/root/repo/target/release/deps/fig27-de28eb70e73a64b4.d: crates/bench/src/bin/fig27.rs

/root/repo/target/release/deps/fig27-de28eb70e73a64b4: crates/bench/src/bin/fig27.rs

crates/bench/src/bin/fig27.rs:
