/root/repo/target/release/deps/proptest-97dbe93a7c0ddfaf.d: crates/vendor/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-97dbe93a7c0ddfaf: crates/vendor/proptest/src/lib.rs

crates/vendor/proptest/src/lib.rs:
