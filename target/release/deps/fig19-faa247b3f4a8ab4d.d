/root/repo/target/release/deps/fig19-faa247b3f4a8ab4d.d: crates/bench/src/bin/fig19.rs

/root/repo/target/release/deps/fig19-faa247b3f4a8ab4d: crates/bench/src/bin/fig19.rs

crates/bench/src/bin/fig19.rs:
