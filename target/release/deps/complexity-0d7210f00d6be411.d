/root/repo/target/release/deps/complexity-0d7210f00d6be411.d: crates/bench/src/bin/complexity.rs

/root/repo/target/release/deps/complexity-0d7210f00d6be411: crates/bench/src/bin/complexity.rs

crates/bench/src/bin/complexity.rs:
