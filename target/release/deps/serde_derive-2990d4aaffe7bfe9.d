/root/repo/target/release/deps/serde_derive-2990d4aaffe7bfe9.d: crates/vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-2990d4aaffe7bfe9.so: crates/vendor/serde_derive/src/lib.rs

crates/vendor/serde_derive/src/lib.rs:
