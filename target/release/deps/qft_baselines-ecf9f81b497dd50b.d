/root/repo/target/release/deps/qft_baselines-ecf9f81b497dd50b.d: crates/baselines/src/lib.rs crates/baselines/src/lnn_path.rs crates/baselines/src/optimal.rs crates/baselines/src/pipeline.rs crates/baselines/src/sabre.rs

/root/repo/target/release/deps/qft_baselines-ecf9f81b497dd50b: crates/baselines/src/lib.rs crates/baselines/src/lnn_path.rs crates/baselines/src/optimal.rs crates/baselines/src/pipeline.rs crates/baselines/src/sabre.rs

crates/baselines/src/lib.rs:
crates/baselines/src/lnn_path.rs:
crates/baselines/src/optimal.rs:
crates/baselines/src/pipeline.rs:
crates/baselines/src/sabre.rs:
