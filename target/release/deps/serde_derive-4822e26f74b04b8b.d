/root/repo/target/release/deps/serde_derive-4822e26f74b04b8b.d: crates/vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/serde_derive-4822e26f74b04b8b: crates/vendor/serde_derive/src/lib.rs

crates/vendor/serde_derive/src/lib.rs:
