/root/repo/target/release/deps/qft_arch-4885ee0a9a811cfd.d: crates/arch/src/lib.rs crates/arch/src/devices.rs crates/arch/src/distance.rs crates/arch/src/graph.rs crates/arch/src/grid.rs crates/arch/src/hamiltonian.rs crates/arch/src/heavyhex.rs crates/arch/src/lattice.rs crates/arch/src/lnn.rs crates/arch/src/sycamore.rs

/root/repo/target/release/deps/libqft_arch-4885ee0a9a811cfd.rlib: crates/arch/src/lib.rs crates/arch/src/devices.rs crates/arch/src/distance.rs crates/arch/src/graph.rs crates/arch/src/grid.rs crates/arch/src/hamiltonian.rs crates/arch/src/heavyhex.rs crates/arch/src/lattice.rs crates/arch/src/lnn.rs crates/arch/src/sycamore.rs

/root/repo/target/release/deps/libqft_arch-4885ee0a9a811cfd.rmeta: crates/arch/src/lib.rs crates/arch/src/devices.rs crates/arch/src/distance.rs crates/arch/src/graph.rs crates/arch/src/grid.rs crates/arch/src/hamiltonian.rs crates/arch/src/heavyhex.rs crates/arch/src/lattice.rs crates/arch/src/lnn.rs crates/arch/src/sycamore.rs

crates/arch/src/lib.rs:
crates/arch/src/devices.rs:
crates/arch/src/distance.rs:
crates/arch/src/graph.rs:
crates/arch/src/grid.rs:
crates/arch/src/hamiltonian.rs:
crates/arch/src/heavyhex.rs:
crates/arch/src/lattice.rs:
crates/arch/src/lnn.rs:
crates/arch/src/sycamore.rs:
