/root/repo/target/release/deps/complexity-d2844a3350044367.d: crates/bench/src/bin/complexity.rs

/root/repo/target/release/deps/complexity-d2844a3350044367: crates/bench/src/bin/complexity.rs

crates/bench/src/bin/complexity.rs:
