/root/repo/target/release/deps/serde_derive-4702b4c825ee704f.d: crates/vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-4702b4c825ee704f.so: crates/vendor/serde_derive/src/lib.rs

crates/vendor/serde_derive/src/lib.rs:
