/root/repo/target/release/deps/synth_patterns-b1a1f2900429c52b.d: crates/bench/src/bin/synth_patterns.rs

/root/repo/target/release/deps/synth_patterns-b1a1f2900429c52b: crates/bench/src/bin/synth_patterns.rs

crates/bench/src/bin/synth_patterns.rs:
