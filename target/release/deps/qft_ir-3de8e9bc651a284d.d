/root/repo/target/release/deps/qft_ir-3de8e9bc651a284d.d: crates/ir/src/lib.rs crates/ir/src/circuit.rs crates/ir/src/dag.rs crates/ir/src/gate.rs crates/ir/src/latency.rs crates/ir/src/layout.rs crates/ir/src/metrics.rs crates/ir/src/qasm.rs crates/ir/src/qft.rs crates/ir/src/render.rs

/root/repo/target/release/deps/libqft_ir-3de8e9bc651a284d.rlib: crates/ir/src/lib.rs crates/ir/src/circuit.rs crates/ir/src/dag.rs crates/ir/src/gate.rs crates/ir/src/latency.rs crates/ir/src/layout.rs crates/ir/src/metrics.rs crates/ir/src/qasm.rs crates/ir/src/qft.rs crates/ir/src/render.rs

/root/repo/target/release/deps/libqft_ir-3de8e9bc651a284d.rmeta: crates/ir/src/lib.rs crates/ir/src/circuit.rs crates/ir/src/dag.rs crates/ir/src/gate.rs crates/ir/src/latency.rs crates/ir/src/layout.rs crates/ir/src/metrics.rs crates/ir/src/qasm.rs crates/ir/src/qft.rs crates/ir/src/render.rs

crates/ir/src/lib.rs:
crates/ir/src/circuit.rs:
crates/ir/src/dag.rs:
crates/ir/src/gate.rs:
crates/ir/src/latency.rs:
crates/ir/src/layout.rs:
crates/ir/src/metrics.rs:
crates/ir/src/qasm.rs:
crates/ir/src/qft.rs:
crates/ir/src/render.rs:
