/root/repo/target/release/deps/fig17-1343b7c4c7ff5dd5.d: crates/bench/src/bin/fig17.rs

/root/repo/target/release/deps/fig17-1343b7c4c7ff5dd5: crates/bench/src/bin/fig17.rs

crates/bench/src/bin/fig17.rs:
