/root/repo/target/release/deps/fig17-9655a29513a0706a.d: crates/bench/src/bin/fig17.rs

/root/repo/target/release/deps/fig17-9655a29513a0706a: crates/bench/src/bin/fig17.rs

crates/bench/src/bin/fig17.rs:
