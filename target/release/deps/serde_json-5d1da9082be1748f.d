/root/repo/target/release/deps/serde_json-5d1da9082be1748f.d: crates/vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-5d1da9082be1748f.rlib: crates/vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-5d1da9082be1748f.rmeta: crates/vendor/serde_json/src/lib.rs

crates/vendor/serde_json/src/lib.rs:
