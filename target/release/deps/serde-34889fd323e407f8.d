/root/repo/target/release/deps/serde-34889fd323e407f8.d: crates/vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-34889fd323e407f8.rlib: crates/vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-34889fd323e407f8.rmeta: crates/vendor/serde/src/lib.rs

crates/vendor/serde/src/lib.rs:
