/root/repo/target/release/deps/rand-1201f26deadc7fb9.d: crates/vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-1201f26deadc7fb9.rlib: crates/vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-1201f26deadc7fb9.rmeta: crates/vendor/rand/src/lib.rs

crates/vendor/rand/src/lib.rs:
