/root/repo/target/release/deps/substrates-7a18baf36c7d3847.d: tests/substrates.rs

/root/repo/target/release/deps/substrates-7a18baf36c7d3847: tests/substrates.rs

tests/substrates.rs:
