/root/repo/target/release/deps/compile_time-ddd84b8a24fdac1f.d: crates/bench/benches/compile_time.rs

/root/repo/target/release/deps/compile_time-ddd84b8a24fdac1f: crates/bench/benches/compile_time.rs

crates/bench/benches/compile_time.rs:
