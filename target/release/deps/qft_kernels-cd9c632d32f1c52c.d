/root/repo/target/release/deps/qft_kernels-cd9c632d32f1c52c.d: src/lib.rs

/root/repo/target/release/deps/qft_kernels-cd9c632d32f1c52c: src/lib.rs

src/lib.rs:
