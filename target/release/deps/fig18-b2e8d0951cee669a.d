/root/repo/target/release/deps/fig18-b2e8d0951cee669a.d: crates/bench/src/bin/fig18.rs

/root/repo/target/release/deps/fig18-b2e8d0951cee669a: crates/bench/src/bin/fig18.rs

crates/bench/src/bin/fig18.rs:
