/root/repo/target/release/examples/probe_api-f49792d1a86a4922.d: examples/probe_api.rs

/root/repo/target/release/examples/probe_api-f49792d1a86a4922: examples/probe_api.rs

examples/probe_api.rs:
