/root/repo/target/release/examples/compare_compilers-9375c38b4e18b266.d: examples/compare_compilers.rs

/root/repo/target/release/examples/compare_compilers-9375c38b4e18b266: examples/compare_compilers.rs

examples/compare_compilers.rs:
