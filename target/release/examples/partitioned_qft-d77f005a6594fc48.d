/root/repo/target/release/examples/partitioned_qft-d77f005a6594fc48.d: examples/partitioned_qft.rs

/root/repo/target/release/examples/partitioned_qft-d77f005a6594fc48: examples/partitioned_qft.rs

examples/partitioned_qft.rs:
