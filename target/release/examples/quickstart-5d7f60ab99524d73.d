/root/repo/target/release/examples/quickstart-5d7f60ab99524d73.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-5d7f60ab99524d73: examples/quickstart.rs

examples/quickstart.rs:
