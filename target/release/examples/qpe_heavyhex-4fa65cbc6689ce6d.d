/root/repo/target/release/examples/qpe_heavyhex-4fa65cbc6689ce6d.d: examples/qpe_heavyhex.rs

/root/repo/target/release/examples/qpe_heavyhex-4fa65cbc6689ce6d: examples/qpe_heavyhex.rs

examples/qpe_heavyhex.rs:
