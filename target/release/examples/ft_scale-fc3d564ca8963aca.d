/root/repo/target/release/examples/ft_scale-fc3d564ca8963aca.d: examples/ft_scale.rs

/root/repo/target/release/examples/ft_scale-fc3d564ca8963aca: examples/ft_scale.rs

examples/ft_scale.rs:
