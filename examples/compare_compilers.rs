//! Side-by-side comparison on one device: our analytical kernel vs SABRE
//! (strict and relaxed DAGs) vs the exact-optimal search — a miniature of
//! the paper's evaluation story, with every compiler resolved by name from
//! the registry and driven through the same pipeline.
//!
//! ```sh
//! cargo run --release --example compare_compilers
//! ```

use qft_kernels::ir::dag::DagMode;
use qft_kernels::{registry, CompileError, CompileOptions, Target};

fn main() {
    let t = Target::heavy_hex_groups(3).unwrap(); // 15 qubits
    println!("device: {} ({} qubits)\n", t.name(), t.n_qubits());
    println!(
        "{:<22} {:>7} {:>7} {:>10}",
        "compiler", "depth", "#SWAP", "CT"
    );

    let verified = CompileOptions::verified();
    let runs = [
        ("heavyhex", "ours (analytical)", verified.clone()),
        (
            "sabre",
            "sabre (strict dag)",
            CompileOptions {
                dag_mode: DagMode::Strict,
                ..verified.clone()
            },
        ),
        (
            "sabre",
            "sabre (relaxed dag)",
            CompileOptions {
                dag_mode: DagMode::Relaxed,
                ..verified.clone()
            },
        ),
        (
            "optimal",
            "optimal (A*)",
            CompileOptions {
                deadline_s: 3.0,
                max_nodes: u64::MAX,
                ..verified
            },
        ),
    ];

    for (name, label, opts) in runs {
        match registry().compile(name, &t, &opts) {
            Ok(r) => println!(
                "{:<22} {:>7} {:>7} {:>9.1}ms",
                label,
                r.metrics.depth,
                r.metrics.swaps,
                r.compile_s * 1e3
            ),
            Err(CompileError::Timeout { elapsed_s, nodes, .. }) => println!(
                "{:<22} {:>7} {:>7} {:>9.1}s   (TLE after {nodes} nodes — the paper's SATMAP behaviour)",
                label, "-", "-", elapsed_s
            ),
            Err(e) => panic!("{label}: {e}"),
        }
    }
}
