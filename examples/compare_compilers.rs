//! Side-by-side comparison on one device: our analytical kernel vs SABRE
//! (strict and relaxed DAGs) vs the exact-optimal search — a miniature of
//! the paper's evaluation story.
//!
//! ```sh
//! cargo run --release --example compare_compilers
//! ```

use qft_kernels::arch::heavyhex::HeavyHex;
use qft_kernels::baselines::optimal::{optimal_compile, OptimalConfig, OptimalResult};
use qft_kernels::baselines::sabre::{sabre_qft, SabreConfig};
use qft_kernels::core::compile_heavyhex;
use qft_kernels::ir::dag::{CircuitDag, DagMode};
use qft_kernels::ir::qft::qft_circuit;
use qft_kernels::sim::symbolic::verify_qft_mapping;
use std::time::{Duration, Instant};

fn main() {
    let hh = HeavyHex::groups(3); // 15 qubits
    let graph = hh.graph();
    let n = hh.n_qubits();
    println!("device: {} ({n} qubits)\n", graph.name());
    println!("{:<22} {:>7} {:>7} {:>10}", "compiler", "depth", "#SWAP", "CT");

    let t0 = Instant::now();
    let ours = compile_heavyhex(&hh);
    let ct = t0.elapsed();
    verify_qft_mapping(&ours, graph).unwrap();
    println!(
        "{:<22} {:>7} {:>7} {:>9.1?}",
        "ours (analytical)",
        ours.depth_uniform(),
        ours.swap_count(),
        ct
    );

    for (mode, name) in [
        (DagMode::Strict, "sabre (strict dag)"),
        (DagMode::Relaxed, "sabre (relaxed dag)"),
    ] {
        let t0 = Instant::now();
        let mc = sabre_qft(n, graph, mode, &SabreConfig::default());
        let ct = t0.elapsed();
        verify_qft_mapping(&mc, graph).unwrap();
        println!(
            "{:<22} {:>7} {:>7} {:>9.1?}",
            name,
            mc.depth_uniform(),
            mc.swap_count(),
            ct
        );
    }

    let dag = CircuitDag::build(&qft_circuit(n), DagMode::Strict);
    let cfg = OptimalConfig { deadline: Duration::from_secs(3), max_nodes: u64::MAX };
    let t0 = Instant::now();
    match optimal_compile(&dag, graph, &cfg) {
        OptimalResult::Solved { circuit, .. } => {
            verify_qft_mapping(&circuit, graph).unwrap();
            println!(
                "{:<22} {:>7} {:>7} {:>9.1?}",
                "optimal (A*)",
                circuit.depth_uniform(),
                circuit.swap_count(),
                t0.elapsed()
            );
        }
        OptimalResult::TimedOut { nodes } => {
            println!(
                "{:<22} {:>7} {:>7} {:>9.1?}  (TLE after {nodes} nodes — the paper's SATMAP behaviour)",
                "optimal (A*)", "-", "-", t0.elapsed()
            );
        }
    }
}
