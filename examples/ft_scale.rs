//! Large-scale FT compilation (§7.2): compile the 1024-qubit QFT kernel
//! for a 32×32 lattice-surgery backend through the pipeline, verify it
//! symbolically, and report the latency-weighted cost — all in well under
//! a second, because the mapping is analytical (no per-instance search).
//!
//! ```sh
//! cargo run --release --example ft_scale
//! ```

use qft_kernels::sim::symbolic::verify_qft_mapping;
use qft_kernels::{registry, CompileOptions, Target};
use std::time::Instant;

fn main() {
    for m in [16usize, 24, 32] {
        let t = Target::lattice_surgery(m).unwrap();
        let n = t.n_qubits();

        // Compile without in-pipeline verification so the two phases can
        // be timed separately.
        let r = registry()
            .compile("lattice", &t, &CompileOptions::default())
            .expect("lattice mapper handles every m >= 2");

        let t0 = Instant::now();
        let report = verify_qft_mapping(&r.circuit, t.graph()).expect("kernel must verify");
        let verify_s = t0.elapsed().as_secs_f64();

        let depth = r.metrics.depth;
        println!(
            "{}: N={n:<5} pairs={:<7} depth={depth:<7} ({:.2}/qubit) swaps={:<7} \
             compile {:.3}s, verify {verify_s:.3}s",
            r.target,
            report.pairs,
            depth as f64 / n as f64,
            r.metrics.swaps,
            r.compile_s,
        );
        assert_eq!(report.pairs, n * (n - 1) / 2);
        // Linear depth: the per-qubit cost must stay bounded as N grows 4x.
        assert!(depth < 14 * n as u64);
    }
    println!("\n1024-qubit FT QFT kernel compiled and verified — linear depth, no search.");
}
