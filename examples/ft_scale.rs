//! Large-scale FT compilation (§7.2): compile the 1024-qubit QFT kernel
//! for a 32×32 lattice-surgery backend, verify it symbolically, and report
//! the latency-weighted cost — all in well under a second, because the
//! mapping is analytical (no per-instance search).
//!
//! ```sh
//! cargo run --release --example ft_scale
//! ```

use qft_kernels::arch::lattice::LatticeSurgery;
use qft_kernels::core::compile_lattice;
use qft_kernels::sim::symbolic::verify_qft_mapping;
use std::time::Instant;

fn main() {
    for m in [16usize, 24, 32] {
        let l = LatticeSurgery::new(m);
        let n = l.n_qubits();

        let t0 = Instant::now();
        let mc = compile_lattice(&l);
        let compile_s = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let report = verify_qft_mapping(&mc, l.graph()).expect("kernel must verify");
        let verify_s = t0.elapsed().as_secs_f64();

        let depth = l.graph().depth_of(&mc);
        println!(
            "{}: N={n:<5} pairs={:<7} depth={depth:<7} ({:.2}/qubit) swaps={:<7} \
             compile {compile_s:.3}s, verify {verify_s:.3}s",
            l.graph().name(),
            report.pairs,
            depth as f64 / n as f64,
            mc.swap_count(),
        );
        assert_eq!(report.pairs, n * (n - 1) / 2);
        // Linear depth: the per-qubit cost must stay bounded as N grows 4x.
        assert!(depth < 14 * n as u64);
    }
    println!("\n1024-qubit FT QFT kernel compiled and verified — linear depth, no search.");
}
