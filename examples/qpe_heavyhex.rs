//! Quantum phase estimation (QPE) on IBM heavy-hex — one of the QFT-kernel
//! applications the paper's introduction motivates (Fig. 1).
//!
//! We estimate the eigenphase `φ = j / 2^n` of a diagonal unitary using an
//! `n`-qubit counting register:
//!
//! 1. phase kick-back prepares `Σ_k e^{2πiφk} |k⟩ / √M` — exactly
//!    `DFT|j⟩`;
//! 2. the *inverse* QFT maps it back to a computational basis state.
//!
//! The inverse QFT is obtained by running our hardware-compiled heavy-hex
//! kernel backwards (every gate inverted). Because the forward circuit
//! equals `DFT ∘ bit-reverse`, the measurement outcome is the bit-reversed
//! counting value — the standard QPE read-out convention.
//!
//! ```sh
//! cargo run --release --example qpe_heavyhex
//! ```

use qft_kernels::sim::state::StateVector;
use qft_kernels::{registry, CompileOptions, Target};
use std::f64::consts::PI;

fn main() {
    // 2 heavy-hex groups = 10 counting qubits => 1024 phase bins.
    let t = Target::heavy_hex_groups(2).unwrap();
    let n = t.n_qubits();
    let opts = CompileOptions::verified();
    let r = registry()
        .compile("heavyhex", &t, &opts)
        .expect("kernel must verify");
    let mc = r.circuit;
    println!(
        "compiled inverse-QFT kernel on {}: depth {} / {} SWAPs",
        r.target, r.metrics.depth, r.metrics.swaps
    );

    let m = 1usize << n;
    for true_j in [1usize, 137, 512, 1000] {
        let phi = true_j as f64 / m as f64;

        // Step 1: phase kick-back. Counting qubit q accumulates
        // e^{2πi φ 2^q} on its |1> component; the register state becomes
        // Σ_k e^{2πi φ k} |k⟩ / sqrt(M) = DFT|j⟩.
        let mut state = uniform_with_phase_kicks(n, phi);

        // Step 2: inverse QFT = the compiled kernel run backwards.
        let gates: Vec<_> = mc.logical_interactions().collect();
        for g in gates.iter().rev() {
            state.apply_gate_inverse(g);
        }

        // Read-out: C = DFT ∘ R, so C⁻¹ · DFT|j⟩ = R|j⟩ = |bitrev(j)⟩.
        let (best, prob) = state
            .amplitudes()
            .iter()
            .enumerate()
            .map(|(b, a)| (b, a.abs2()))
            .max_by(|x, y| x.1.total_cmp(&y.1))
            .unwrap();
        let estimate = bitrev(best, n);
        println!(
            "true phase {true_j:>4}/{m}  ->  estimated {estimate:>4}/{m}  (peak prob {prob:.4})"
        );
        assert_eq!(estimate, true_j, "QPE must recover the exact dyadic phase");
        assert!(prob > 0.99);
    }
    println!("QPE recovered every dyadic eigenphase exactly.");
}

/// `H^{⊗n}` followed by the controlled-U^{2^q} phase kicks, computed
/// directly on the state (the eigenstate qubit factors out).
fn uniform_with_phase_kicks(n: usize, phi: f64) -> StateVector {
    let mut s = StateVector::zero(n);
    for q in 0..n {
        s.apply_h(q);
    }
    // |k⟩ gains e^{2πi φ k}: apply per-qubit phases e^{2πi φ 2^q} to bit q.
    let mut t = s.clone();
    let amps: Vec<_> = t
        .amplitudes()
        .iter()
        .enumerate()
        .map(|(k, a)| {
            let theta = 2.0 * PI * phi * k as f64;
            *a * qft_kernels::sim::complex::Complex64::from_angle(theta)
        })
        .collect();
    t = StateVector::from_amplitudes(n, amps);
    t
}

fn bitrev(x: usize, n: usize) -> usize {
    let mut out = 0;
    for q in 0..n {
        if x & (1 << q) != 0 {
            out |= 1 << (n - 1 - q);
        }
    }
    out
}
