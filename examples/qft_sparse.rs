//! Sparse-tier verification at n = 28: cross-check four compilers against
//! the closed-form AQFT matrix elements in milliseconds, on a register
//! where a dense state vector would need 2^28 amplitudes (4 GiB).
//!
//! The sparse checker never builds a reference state. It evaluates a
//! handful of matrix elements ⟨y|C|ψ⟩ with a hash-map state and a
//! projection schedule that post-selects each qubit right after its last
//! non-diagonal op, so the live amplitude map never exceeds 2 × the probe
//! ket size — independent of n. The `mapped_equals_aqft_auto` router picks
//! this tier automatically above the dense cutoff.
//!
//! ```sh
//! cargo run --release --example qft_sparse
//! ```

use qft_kernels::sim::equiv::{mapped_equals_aqft_auto, plan_tier, EngineTier, SparseChecker};
use qft_kernels::{registry, CompileOptions, Target};
use std::time::Instant;

fn main() {
    let n = 28;
    let degree = 3;
    let target = Target::lnn(n).unwrap();
    println!(
        "verifying degree-{degree} AQFT kernels on {} (n = {n}; dense plane would be 2^{n} amps)\n",
        target.name()
    );

    println!("compiler     #SWAP  compile(ms)  verify(ms)  peak-amps  equivalent");
    for compiler in ["lnn", "sabre", "lnn-path", "optimal"] {
        // The exact A* search only closes at this size for degree 2 (the
        // degree-2 AQFT needs zero SWAPs on a line); the heuristics take
        // the paper's degree-3 truncation.
        let d = if compiler == "optimal" { 2 } else { degree };
        let t0 = Instant::now();
        let r = registry()
            .compile(
                compiler,
                &target,
                &CompileOptions::default().with_approximation(d),
            )
            .expect("compile");
        let compile_ms = t0.elapsed().as_secs_f64() * 1e3;

        // The router inspects size and content: at n = 28 every kernel
        // lands on the sparse tier.
        let tier = plan_tier(&r.circuit, 6).expect("a tier must exist");
        assert_eq!(tier, EngineTier::Sparse);

        let mut checker = SparseChecker::for_aqft(n, d, 4).expect("checker");
        let t1 = Instant::now();
        let ok = checker.matches_physically(&r.circuit).expect("run")
            && checker.matches_logical(&r.circuit).expect("run");
        let verify_ms = t1.elapsed().as_secs_f64() * 1e3;
        println!(
            "{:<12} {:>5} {:>12.2} {:>11.2} {:>10} {:>11}",
            compiler,
            r.metrics.swaps,
            compile_ms,
            verify_ms,
            checker.peak_nonzeros(),
            if ok { "yes" } else { "NO" }
        );
        assert!(ok, "{compiler} diverged from the closed-form AQFT");

        // The one-call router does the same thing end to end.
        assert!(mapped_equals_aqft_auto(&r.circuit, d, 2).expect("auto"));
    }

    // The checker is a real discriminator, not a rubber stamp: a degree-3
    // kernel must NOT pass as the exact QFT.
    let r = registry()
        .compile(
            "lnn",
            &target,
            &CompileOptions::default().with_approximation(degree),
        )
        .unwrap();
    assert!(!mapped_equals_aqft_auto(&r.circuit, n as u32, 2).expect("auto"));
    println!(
        "\ndegree-{degree} kernel correctly rejected as exact QFT; all checks in milliseconds"
    );
}
