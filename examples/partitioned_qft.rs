//! The k-partition theorem of §3.2, live: slice the QFT into QFT-IA and
//! QFT-IE blocks any way you like, and the result is still the QFT —
//! verified both by the Type-II order checker and on states. Then the same
//! theorem at work physically: compile an IBM-Eagle-sized device end to
//! end from its full lattice.
//!
//! ```sh
//! cargo run --release --example partitioned_qft
//! ```

use qft_kernels::arch::devices;
use qft_kernels::ir::dag::{CircuitDag, DagMode};
use qft_kernels::ir::qft::{check_qft_circuit, qft_circuit, qft_partitioned, Partition};
use qft_kernels::sim::state::StateVector;
use qft_kernels::{registry, CompileOptions, Target};

fn main() {
    // 1. Logical level: three very different partitions of a 10-qubit QFT.
    let n = 10u32;
    let partitions = [
        ("even 2-way", Partition::even(n, 2)),
        ("even 5-way", Partition::even(n, 5)),
        (
            "nested {0..3, {3..5, 5..10}}",
            Partition::Node(vec![
                Partition::Leaf(0..3),
                Partition::Node(vec![Partition::Leaf(3..5), Partition::Leaf(5..10)]),
            ]),
        ),
    ];
    let reference = qft_circuit(n as usize);
    for (name, p) in &partitions {
        let c = qft_partitioned(p);
        check_qft_circuit(&c).expect("partition order must satisfy Type II");
        // Same unitary as the textbook order, on a random state.
        let input = StateVector::random(n as usize, 42);
        let mut a = input.clone();
        a.apply_circuit(&c);
        let mut b = input.clone();
        b.apply_circuit(&reference);
        let fidelity = a.fidelity(&b);
        println!(
            "{name:<28} gates={} fidelity vs textbook = {fidelity:.12}",
            c.len()
        );
        assert!((fidelity - 1.0).abs() < 1e-9);
    }

    // 2. The partition order is exactly what the relaxed DAG admits.
    let relaxed = CircuitDag::build(&reference, DagMode::Relaxed);
    println!(
        "\nrelaxed DAG: {} nodes, {} edges (strict program order would force a single chain per qubit)",
        relaxed.len(),
        relaxed.edge_count()
    );

    // 3. Physical level: an Eagle-sized heavy-hex machine, simplified per
    // Appendix 1, compiled and verified through the pipeline.
    let lattice = devices::ibm_eagle_like();
    let (hh, deleted) = lattice.simplify();
    let t = Target::heavy_hex(hh);
    let opts = CompileOptions::verified();
    let r = registry()
        .compile("heavyhex", &t, &opts)
        .expect("kernel must verify");
    println!(
        "\nEagle-like device: {} qubits ({} lattice links deleted in simplification)\n\
         QFT kernel: {} pairs, depth {}, {} SWAPs — verified.",
        t.n_qubits(),
        deleted,
        r.metrics.cphases,
        r.metrics.depth,
        r.metrics.swaps
    );
}
