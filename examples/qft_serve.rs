//! `qft_serve` — the compile service as a JSON-lines CLI.
//!
//! Reads one [`CompileRequest`] per stdin line, serves it through a shared
//! [`CompileService`] (so repeated requests hit the LRU result cache), and
//! writes one JSON object per stdout line: a compact summary row by
//! default, the full [`qft_serve::CompileResponse`] (mapped circuit
//! included) under `--full`, or a [`ServeError`] (`kind` + `error`) for
//! anything malformed — bad JSON, unknown compilers, invalid targets. The
//! final [`ServeStats`] snapshot goes to stderr.
//!
//! By default each request is compiled inline, in order. Under `--stream`
//! the example instead submits every request to the service's persistent
//! worker pool through a [`StreamSession`] and prints rows as they
//! complete — completion order, each row tagged with the submission
//! sequence number (`seq`) so callers can re-correlate. Duplicate
//! requests in a streamed batch are deduplicated in flight: one compile,
//! every duplicate served the same shared artifact.
//!
//! Two network modes front the same service over TCP (the framing is
//! specified in `crates/serve/PROTOCOL.md`):
//!
//! * `--listen <addr>` — serve the compile service on a socket (e.g.
//!   `--listen 127.0.0.1:7878`) until the process is killed; stats go to
//!   stderr on an interval.
//! * `--connect <addr>` — instead of compiling in-process, forward each
//!   stdin request to a running `--listen` instance over one connection
//!   and print the rows it answers; the final stderr stats snapshot is
//!   fetched over the wire.
//! * `--route <addr,addr,...>` — front a whole fleet of `--listen`
//!   instances through the consistent-hash [`Router`]: each request is
//!   hashed to its owning backend (cache affinity), transport failures
//!   fail over to the next backend on the ring, and every row is tagged
//!   with the answering backend. The final stderr snapshot reports
//!   per-backend routing state and wire-level stats.
//!
//! Two elastic-membership flags modify `--route` mode:
//!
//! * `--join <addr>` — before serving, bind a *new* in-process backend
//!   on `<addr>` (port 0 for ephemeral), warm it up by replaying the
//!   cache entries for the keys it will own from the existing backends
//!   (the wire-level `warmup-request`/`warmup-batch` protocol), then
//!   grow the ring with it; the warm-up report goes to stderr.
//! * `--leave <addr>` — before serving, remove `<addr>` from the ring:
//!   it stops receiving new keys, in-flight requests drain, then its
//!   pooled connections drop. The backend process itself keeps running.
//!
//! ```text
//! $ cargo run --release --example qft_serve <<'EOF'
//! {"compiler": "heavyhex", "target": "heavyhex:4"}
//! {"compiler": "lattice", "target": "lattice:6", "options": {"opt_level": 2, "approximation": 3}}
//! {"compiler": "heavyhex", "target": "heavyhex:4"}
//! EOF
//! {"compiler":"heavyhex","target":"heavyhex-20",...,"cached":false,...}
//! {"compiler":"lattice","target":"lattice-surgery-6x6",...,"cached":false,...}
//! {"compiler":"heavyhex","target":"heavyhex-20",...,"cached":true,...}
//! ```

use qft_kernels::serve::{
    warmup, ClientConfig, CompileRequest, CompileResponse, CompileService, NetClient, NetServer,
    Router, ServeError,
};
use serde::Serialize;
use std::io::{BufRead, Write};
use std::net::SocketAddr;
use std::sync::Arc;

/// The default per-request output row: headline metrics plus the cache
/// and timing metadata.
#[derive(Debug, Serialize)]
struct Summary {
    compiler: String,
    target: String,
    n: usize,
    depth: u64,
    swaps: usize,
    cphases: usize,
    cached: bool,
    wall_s: f64,
    compile_s: f64,
}

impl Summary {
    fn of(resp: &CompileResponse) -> Summary {
        Summary {
            compiler: resp.result.compiler.clone(),
            target: resp.result.target.clone(),
            n: resp.result.n,
            depth: resp.result.metrics.depth,
            swaps: resp.result.metrics.swaps,
            cphases: resp.result.metrics.cphases,
            cached: resp.cached,
            wall_s: resp.wall_s,
            compile_s: resp.compile_s,
        }
    }
}

/// A streamed row: the summary plus the submission sequence number, so
/// completion-order output can be re-correlated with input order.
#[derive(Debug, Serialize)]
struct StreamedRow {
    seq: u64,
    row: Summary,
}

fn render(outcome: &Result<CompileResponse, ServeError>, full: bool) -> String {
    match outcome {
        Ok(resp) if full => serde_json::to_string(resp),
        Ok(resp) => serde_json::to_string(&Summary::of(resp)),
        Err(e) => serde_json::to_string(e),
    }
    .expect("responses always serialize")
}

/// Inline mode: compile each request on this thread, in input order.
fn serve_inline(service: &CompileService, lines: &[String], full: bool) {
    let mut out = std::io::stdout().lock();
    for line in lines {
        let outcome = serde_json::from_str::<CompileRequest>(line)
            .map_err(ServeError::bad_request)
            .and_then(|req| service.compile(&req));
        writeln!(out, "{}", render(&outcome, full)).expect("write stdout");
    }
}

/// Streaming mode: submit everything up front to the worker pool, then
/// drain completions as they land (completion order, `seq`-tagged).
fn serve_stream(service: &CompileService, lines: &[String], full: bool) {
    let mut out = std::io::stdout().lock();
    let mut session = service.stream();
    for line in lines {
        match serde_json::from_str::<CompileRequest>(line).map_err(ServeError::bad_request) {
            Ok(req) => {
                session.submit(req).expect("submit to worker pool");
            }
            // Malformed lines never reach the pool; report them inline.
            Err(e) => writeln!(out, "{}", render(&Err(e), full)).expect("write stdout"),
        }
    }
    while let Some((seq, outcome)) = session.recv() {
        let json = match &outcome {
            Ok(resp) if full => serde_json::to_string(resp).expect("responses always serialize"),
            Ok(resp) => serde_json::to_string(&StreamedRow {
                seq,
                row: Summary::of(resp),
            })
            .expect("responses always serialize"),
            Err(e) => serde_json::to_string(e).expect("responses always serialize"),
        };
        writeln!(out, "{json}").expect("write stdout");
    }
}

/// `--listen` mode: front the service with a [`NetServer`] and run until
/// killed, reporting stats to stderr every few seconds.
fn serve_listen(addr: &str) -> ! {
    let service = Arc::new(CompileService::new());
    let server = NetServer::bind(addr, Arc::clone(&service))
        .unwrap_or_else(|e| panic!("cannot listen on {addr}: {e}"));
    eprintln!("listening on {}", server.local_addr());
    loop {
        std::thread::sleep(std::time::Duration::from_secs(5));
        eprintln!(
            "{}",
            serde_json::to_string(&service.stats()).expect("stats always serialize")
        );
    }
}

/// `--connect` mode: forward each stdin request over one connection to a
/// `--listen` instance; rows come back in submission order.
fn serve_connect(addr: &str, lines: &[String], full: bool) {
    let mut client =
        NetClient::connect(addr).unwrap_or_else(|e| panic!("cannot connect to {addr}: {e}"));
    let mut out = std::io::stdout().lock();
    for line in lines {
        let outcome = match serde_json::from_str::<CompileRequest>(line) {
            Ok(req) => client
                .request(&req)
                .map_err(|e| ServeError::bad_request(format!("wire request failed: {e}"))),
            // Malformed lines never reach the wire; report them inline.
            Err(e) => Err(ServeError::bad_request(e)),
        };
        writeln!(out, "{}", render(&outcome, full)).expect("write stdout");
    }
    let stats = client
        .stats()
        .unwrap_or_else(|e| panic!("wire stats failed: {e}"));
    let _ = client.goodbye();
    eprintln!(
        "{}",
        serde_json::to_string_pretty(&stats).expect("stats always serialize")
    );
}

/// A routed row: the summary plus which backend answered and how many
/// backends failed over before the answer.
#[derive(Debug, Serialize)]
struct RoutedRow {
    backend: String,
    failovers: u32,
    row: Summary,
}

/// `--route` mode: consistent-hash each stdin request across a fleet of
/// `--listen` backends, tagging every row with the answering backend.
/// `--join` grows the ring with a freshly bound, warm-up-replayed
/// backend first; `--leave` shrinks it with a drain.
fn serve_route(addrs: &str, join: Option<&str>, leave: Option<&str>, lines: &[String], full: bool) {
    let donor_addrs: Vec<SocketAddr> = addrs
        .split(',')
        .map(|a| {
            a.trim()
                .parse()
                .unwrap_or_else(|e| panic!("bad backend address {a:?}: {e}"))
        })
        .collect();
    let router =
        Router::new(donor_addrs.clone()).unwrap_or_else(|e| panic!("bad backend list: {e}"));

    // Held for the process lifetime so the joined backend keeps serving.
    let mut joined: Option<NetServer> = None;
    if let Some(addr) = join {
        let service = Arc::new(CompileService::new());
        let server = NetServer::bind(addr, Arc::clone(&service))
            .unwrap_or_else(|e| panic!("cannot bind the joining backend on {addr}: {e}"));
        let join_addr = server.local_addr();
        let predicate = router.warmup_predicate(join_addr);
        let report =
            warmup::replay_into(&service, &donor_addrs, &predicate, &ClientConfig::default());
        router
            .add_backend(join_addr)
            .unwrap_or_else(|e| panic!("cannot join {join_addr}: {e}"));
        eprintln!(
            "joined {join_addr} warm: {}",
            serde_json::to_string(&report).expect("reports always serialize")
        );
        joined = Some(server);
    }
    if let Some(addr) = leave {
        let addr: SocketAddr = addr
            .parse()
            .unwrap_or_else(|e| panic!("bad --leave address {addr:?}: {e}"));
        router
            .remove_backend(addr)
            .unwrap_or_else(|e| panic!("cannot leave {addr}: {e}"));
        eprintln!("left {addr}: drained and out of the ring");
    }

    let mut out = std::io::stdout().lock();
    for line in lines {
        let json = match serde_json::from_str::<CompileRequest>(line) {
            Ok(req) => match router.request(&req) {
                Ok(routed) if full => {
                    serde_json::to_string(&routed.response).expect("responses always serialize")
                }
                Ok(routed) => serde_json::to_string(&RoutedRow {
                    backend: routed.addr.to_string(),
                    failovers: routed.failovers,
                    row: Summary::of(&routed.response),
                })
                .expect("responses always serialize"),
                Err(e) => serde_json::to_string(&ServeError::bad_request(format!(
                    "routed request failed: {e}"
                )))
                .expect("responses always serialize"),
            },
            // Malformed lines never reach the wire; report them inline.
            Err(e) => serde_json::to_string(&ServeError::bad_request(e))
                .expect("responses always serialize"),
        };
        writeln!(out, "{json}").expect("write stdout");
    }
    eprintln!(
        "{}",
        serde_json::to_string_pretty(&router.backend_states()).expect("states always serialize")
    );
    for tagged in router.backend_stats() {
        match tagged {
            Ok(tagged) => eprintln!(
                "{}",
                serde_json::to_string(&tagged).expect("stats always serialize")
            ),
            Err(e) => eprintln!("{{\"error\": \"backend stats failed: {e}\"}}"),
        }
    }
    drop(joined);
}

/// The value following `flag` on the command line, if present.
fn flag_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let stream = std::env::args().any(|a| a == "--stream");
    if let Some(addr) = flag_value("--listen") {
        serve_listen(&addr);
    }
    let stdin = std::io::stdin();
    let lines: Vec<String> = stdin
        .lock()
        .lines()
        .map(|l| l.expect("read stdin"))
        .filter(|l| !l.trim().is_empty())
        .collect();
    if let Some(addr) = flag_value("--connect") {
        serve_connect(&addr, &lines, full);
        return;
    }
    if let Some(addrs) = flag_value("--route") {
        let join = flag_value("--join");
        let leave = flag_value("--leave");
        serve_route(&addrs, join.as_deref(), leave.as_deref(), &lines, full);
        return;
    }
    let service = CompileService::new();
    if stream {
        serve_stream(&service, &lines, full);
    } else {
        serve_inline(&service, &lines, full);
    }
    eprintln!(
        "{}",
        serde_json::to_string_pretty(&service.stats()).expect("stats always serialize")
    );
}
