//! `qft_serve` — the compile service as a JSON-lines CLI.
//!
//! Reads one [`CompileRequest`] per stdin line, serves it through a shared
//! [`CompileService`] (so repeated requests hit the LRU result cache), and
//! writes one JSON object per stdout line: a compact summary row by
//! default, the full [`qft_serve::CompileResponse`] (mapped circuit
//! included) under `--full`, or a [`ServeError`] (`kind` + `error`) for
//! anything malformed — bad JSON, unknown compilers, invalid targets. The
//! final [`ServeStats`] snapshot goes to stderr.
//!
//! ```text
//! $ cargo run --release --example qft_serve <<'EOF'
//! {"compiler": "heavyhex", "target": "heavyhex:4"}
//! {"compiler": "lattice", "target": "lattice:6", "options": {"opt_level": 2, "approximation": 3}}
//! {"compiler": "heavyhex", "target": "heavyhex:4"}
//! EOF
//! {"compiler":"heavyhex","target":"heavyhex-20",...,"cached":false,...}
//! {"compiler":"lattice","target":"lattice-surgery-6x6",...,"cached":false,...}
//! {"compiler":"heavyhex","target":"heavyhex-20",...,"cached":true,...}
//! ```

use qft_kernels::serve::{CompileRequest, CompileResponse, CompileService, ServeError};
use serde::Serialize;
use std::io::{BufRead, Write};

/// The default per-request output row: headline metrics plus the cache
/// and timing metadata.
#[derive(Debug, Serialize)]
struct Summary {
    compiler: String,
    target: String,
    n: usize,
    depth: u64,
    swaps: usize,
    cphases: usize,
    cached: bool,
    wall_s: f64,
    compile_s: f64,
}

impl Summary {
    fn of(resp: &CompileResponse) -> Summary {
        Summary {
            compiler: resp.result.compiler.clone(),
            target: resp.result.target.clone(),
            n: resp.result.n,
            depth: resp.result.metrics.depth,
            swaps: resp.result.metrics.swaps,
            cphases: resp.result.metrics.cphases,
            cached: resp.cached,
            wall_s: resp.wall_s,
            compile_s: resp.compile_s,
        }
    }
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let service = CompileService::new();
    let stdin = std::io::stdin();
    let mut out = std::io::stdout().lock();
    for line in stdin.lock().lines() {
        let line = line.expect("read stdin");
        if line.trim().is_empty() {
            continue;
        }
        let outcome = serde_json::from_str::<CompileRequest>(&line)
            .map_err(ServeError::bad_request)
            .and_then(|req| service.compile(&req));
        let json = match &outcome {
            Ok(resp) if full => serde_json::to_string(resp),
            Ok(resp) => serde_json::to_string(&Summary::of(resp)),
            Err(e) => serde_json::to_string(e),
        }
        .expect("responses always serialize");
        writeln!(out, "{json}").expect("write stdout");
    }
    eprintln!(
        "{}",
        serde_json::to_string_pretty(&service.stats()).expect("stats always serialize")
    );
}
