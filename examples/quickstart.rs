//! Quickstart: compile the QFT kernel for each supported backend through
//! the registry pipeline, with verification on, and look at the cost
//! metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use qft_kernels::{available_compilers, registry, CompileOptions, Target};

fn main() {
    let targets = [
        Target::lnn(16).unwrap(),
        Target::sycamore(4).unwrap(),
        Target::heavy_hex_groups(4).unwrap(),
        Target::lattice_surgery(6).unwrap(),
    ];
    println!(
        "registered compilers: {}\n",
        available_compilers().join(", ")
    );

    // Every compiled kernel is checked in-pipeline: hardware adjacency,
    // SWAP bookkeeping, and the QFT interaction contract (one CPHASE per
    // pair, Type II order).
    let opts = CompileOptions::verified();

    println!("backend                    N   depth  2q-depth  #SWAP  #CPHASE");
    for t in &targets {
        let compiler = t
            .native_compiler()
            .expect("paper backends have native mappers");
        let r = registry()
            .compile(compiler, t, &opts)
            .expect("compiled kernel must verify");
        let m = &r.metrics;
        assert_eq!(m.cphases, m.n * (m.n - 1) / 2);

        println!(
            "{:<24} {:>4} {:>7} {:>9} {:>6} {:>8}",
            r.target, m.n, m.depth, m.two_qubit_depth, m.swaps, m.cphases
        );
    }

    // Export the smallest kernel as OpenQASM 2.0 (generated on demand).
    let t = Target::sycamore(2).unwrap();
    let r = registry().compile("sycamore", &t, &opts).unwrap();
    println!("\nSycamore 2x2 kernel as OpenQASM (first 12 lines):");
    for line in r.qasm().lines().take(12) {
        println!("  {line}");
    }
}
