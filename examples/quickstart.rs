//! Quickstart: compile the QFT kernel for each supported backend, verify
//! it, and look at the cost metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use qft_kernels::core::Backend;
use qft_kernels::ir::qasm;
use qft_kernels::sim::symbolic::verify_qft_mapping;

fn main() {
    let backends = [
        Backend::Lnn(16),
        Backend::Sycamore(4),
        Backend::HeavyHexGroups(4),
        Backend::LatticeSurgery(6),
    ];

    println!("backend                    N   depth  2q-depth  #SWAP  #CPHASE");
    for b in &backends {
        let graph = b.graph();
        let (mc, m) = b.compile_qft_with_metrics();

        // Every compiled kernel is checked: hardware adjacency, SWAP
        // bookkeeping, and the QFT interaction contract (one CPHASE per
        // pair, Type II order).
        let report = verify_qft_mapping(&mc, &graph).expect("compiled kernel must verify");
        assert_eq!(report.pairs, m.n * (m.n - 1) / 2);

        println!(
            "{:<24} {:>4} {:>7} {:>9} {:>6} {:>8}",
            graph.name(),
            m.n,
            m.depth,
            m.two_qubit_depth,
            m.swaps,
            m.cphases
        );
    }

    // Export the smallest kernel as OpenQASM 2.0.
    let mc = Backend::Sycamore(2).compile_qft();
    let qasm = qasm::mapped_to_qasm(&mc);
    println!("\nSycamore 2x2 kernel as OpenQASM (first 12 lines):");
    for line in qasm.lines().take(12) {
        println!("  {line}");
    }
}
